//! Conformance vectors: fixture-driven VM tests executed through all four
//! dispatch tiers.
//!
//! Each JSON file under `tests/fixtures/conformance/` holds an array of
//! vectors. A vector describes a pre-state (accounts with code, balance and
//! storage), one top-level message, and the expected outcome: halt
//! classification, exact `gas_used`, return data, post-storage and the
//! number of conformance events (unimplemented-opcode halts). Every vector
//! is executed through the legacy decoder, the pre-decoded stream, the
//! block-lowered `match` dispatcher and the direct-threaded tier; the four
//! results and post-worlds must be bit-identical *and* match the committed
//! expectations.
//!
//! The committed vectors pin the semantics the ingestion path depends on:
//! EIP-2929 warm/cold account and storage-slot pricing, EIP-3529
//! refund-cap accounting, the RETURNDATA* buffer rules (EIP-211 faults
//! included), EXTCODE* introspection, CREATE2 address derivation and the
//! conformance-tagged unknown-opcode halt.
//!
//! Updating vectors: run with `MUFUZZ_CONFORMANCE_PRINT=1` to print the
//! observed gas/output/storage for every vector (tier identity is still
//! asserted) instead of failing on stale expectations.

use mufuzz_corpus::{parse_hex_bytecode, JsonValue};
use mufuzz_evm::{
    Account, Address, BlockEnv, DecodedProgram, Evm, ExecutionResult, HaltReason, Message,
    ProgramCache, Taint, WorldState, U256,
};
use std::sync::Arc;

/// Every committed fixture file. A new themed file only needs to be added
/// here to join the suite.
const FIXTURE_FILES: &[&str] = &[
    "tests/fixtures/conformance/gas_eip2929.json",
    "tests/fixtures/conformance/refunds.json",
    "tests/fixtures/conformance/returndata.json",
    "tests/fixtures/conformance/extcode.json",
    "tests/fixtures/conformance/env_create2.json",
    "tests/fixtures/conformance/faults.json",
];

/// One parsed vector: pre-state, message, expectations.
struct Vector {
    name: String,
    world: WorldState,
    msg: Message,
    expect: Expect,
}

/// The committed expectations for a vector. `halt` and `gas_used` are
/// mandatory (they are the conformance signal); the rest assert only when
/// present.
struct Expect {
    halt: String,
    gas_used: u64,
    output: Option<Vec<u8>>,
    /// `(account, slot, value)` triples checked via `WorldState::storage`,
    /// so `0x0` expectations hold for both cleared and never-written slots.
    storage: Vec<(Address, U256, U256)>,
    conformance_events: Option<u64>,
}

/// Collapse a [`HaltReason`] to the stable tag fixtures use. `Fault`
/// carries a free-form message that vectors must not depend on.
fn halt_tag(halt: &HaltReason) -> &'static str {
    match halt {
        HaltReason::Normal => "normal",
        HaltReason::Revert => "revert",
        HaltReason::Invalid => "invalid",
        HaltReason::OutOfGas => "out_of_gas",
        HaltReason::Fault(_) => "fault",
    }
}

fn parse_address(text: &str) -> Address {
    Address::from_u256(U256::from_hex(text).unwrap_or_else(|| panic!("bad address {text:?}")))
}

fn parse_word(text: &str) -> U256 {
    U256::from_hex(text).unwrap_or_else(|| panic!("bad hex word {text:?}"))
}

fn parse_bytes(text: &str) -> Vec<u8> {
    if text == "0x" || text.is_empty() {
        return vec![];
    }
    parse_hex_bytecode(text).unwrap_or_else(|e| panic!("bad hex bytes {text:?}: {e}"))
}

fn hex_of(bytes: &[u8]) -> String {
    let digits: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    format!("0x{digits}")
}

/// Parse one fixture file into its vectors.
fn load_vectors(path: &str) -> Vec<Vector> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let json = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let vectors = json
        .as_array()
        .unwrap_or_else(|| panic!("{path}: top level must be an array"));
    vectors.iter().map(|v| parse_vector(path, v)).collect()
}

fn parse_vector(path: &str, v: &JsonValue) -> Vector {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("{path}: vector without a name"))
        .to_string();
    let ctx = format!("{path}: {name}");

    let mut world = WorldState::new();
    if let Some(accounts) = v.get("accounts").and_then(JsonValue::entries) {
        for (addr_text, spec) in accounts {
            let address = parse_address(addr_text);
            let code = spec
                .get("code")
                .and_then(JsonValue::as_str)
                .map(parse_bytes)
                .unwrap_or_default();
            let balance = spec
                .get("balance")
                .and_then(JsonValue::as_str)
                .map(parse_word)
                .unwrap_or(U256::ZERO);
            let account = if code.is_empty() {
                Account::eoa(balance)
            } else {
                Account::contract(code, balance)
            };
            world.put_account(address, account);
            if let Some(slots) = spec.get("storage").and_then(JsonValue::entries) {
                for (slot_text, value) in slots {
                    let value_text = value
                        .as_str()
                        .unwrap_or_else(|| panic!("{ctx}: storage value must be a hex string"));
                    world.set_storage(
                        address,
                        parse_word(slot_text),
                        parse_word(value_text),
                        Taint::NONE,
                    );
                }
            }
        }
    }

    let caller = parse_address(
        v.get("caller")
            .and_then(JsonValue::as_str)
            .unwrap_or("0x1000"),
    );
    // The caller participates in the value transfer; give it funds unless
    // the fixture pinned its own account.
    if world.account(caller).is_none() {
        world.put_account(caller, Account::eoa(mufuzz_evm::ether(1)));
    }
    let to = parse_address(
        v.get("to")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("{ctx}: vector without a `to` address")),
    );
    let value = v
        .get("value")
        .and_then(JsonValue::as_str)
        .map(parse_word)
        .unwrap_or(U256::ZERO);
    let calldata = v
        .get("calldata")
        .and_then(JsonValue::as_str)
        .map(parse_bytes)
        .unwrap_or_default();
    let mut msg = Message::new(caller, to, value, calldata);
    if let Some(gas) = v.get("gas").and_then(JsonValue::as_u64) {
        msg.gas = gas;
    }

    let expect = v
        .get("expect")
        .unwrap_or_else(|| panic!("{ctx}: vector without `expect`"));
    let halt = expect
        .get("halt")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("{ctx}: expect.halt is mandatory"))
        .to_string();
    let gas_used = expect
        .get("gas_used")
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("{ctx}: expect.gas_used is mandatory"));
    let output = expect
        .get("output")
        .and_then(JsonValue::as_str)
        .map(parse_bytes);
    let mut storage = Vec::new();
    if let Some(accounts) = expect.get("storage").and_then(JsonValue::entries) {
        for (addr_text, slots) in accounts {
            let address = parse_address(addr_text);
            for (slot_text, value) in slots
                .entries()
                .unwrap_or_else(|| panic!("{ctx}: expect.storage accounts must be objects"))
            {
                let value_text = value
                    .as_str()
                    .unwrap_or_else(|| panic!("{ctx}: expected storage value must be hex"));
                storage.push((address, parse_word(slot_text), parse_word(value_text)));
            }
        }
    }
    let conformance_events = expect.get("conformance_events").and_then(JsonValue::as_u64);

    Vector {
        name,
        world,
        msg,
        expect: Expect {
            halt,
            gas_used,
            output,
            storage,
            conformance_events,
        },
    }
}

/// The four execution tiers under comparison (mirrors the decoder
/// differential suite).
#[derive(Clone, Copy)]
enum Tier {
    Legacy,
    Predecoded,
    BlockMatch,
    Block,
}

fn run_tier(vector: &Vector, cache: &ProgramCache, tier: Tier) -> (ExecutionResult, WorldState) {
    let mut world = vector.world.snapshot();
    let mut evm = Evm::new(&mut world, BlockEnv::default()).with_programs(cache);
    match tier {
        Tier::Legacy => evm.config.legacy_decode = true,
        Tier::Predecoded => evm.config.block_lowering = false,
        Tier::BlockMatch => evm.config.direct_threaded = false,
        Tier::Block => {}
    }
    let result = evm.execute(&vector.msg);
    (result, world)
}

/// Execute one vector through all four tiers: assert bit-identity between
/// the tiers, then check the committed expectations (or print the observed
/// values under `MUFUZZ_CONFORMANCE_PRINT=1`).
fn check_vector(file: &str, vector: &Vector, print_mode: bool) {
    // Pre-decode every code blob present in the pre-state, mirroring the
    // production cache shape.
    let mut cache = ProgramCache::new();
    let addresses: Vec<Address> = vector.world.accounts().map(|(a, _)| *a).collect();
    for address in addresses {
        let code = vector.world.code(address);
        if !code.is_empty() {
            cache.insert(Arc::clone(&code), Arc::new(DecodedProgram::decode(&code)));
        }
    }

    let ctx = format!("{file}: {}", vector.name);
    let (block, world_block) = run_tier(vector, &cache, Tier::Block);
    for (tier_name, tier) in [
        ("block-match", Tier::BlockMatch),
        ("predecoded", Tier::Predecoded),
        ("legacy", Tier::Legacy),
    ] {
        let (result, world) = run_tier(vector, &cache, tier);
        assert_eq!(
            block.gas_used, result.gas_used,
            "{ctx}: gas divergence between direct-threaded and {tier_name}"
        );
        assert_eq!(
            block, result,
            "{ctx}: result divergence between direct-threaded and {tier_name}"
        );
        assert_eq!(
            world_block, world,
            "{ctx}: post-state divergence between direct-threaded and {tier_name}"
        );
    }

    if print_mode {
        println!("{ctx}:");
        println!(
            "  halt: {}  gas_used: {}",
            halt_tag(&block.halt),
            block.gas_used
        );
        println!("  output: {}", hex_of(&block.output));
        println!("  conformance_events: {}", block.trace.conformance.len());
        for (address, slot, _) in &vector.expect.storage {
            println!(
                "  storage[{address}][{}] = {}",
                slot.to_hex_string(),
                world_block.storage(*address, *slot).to_hex_string()
            );
        }
        return;
    }

    assert_eq!(
        halt_tag(&block.halt),
        vector.expect.halt,
        "{ctx}: halt {:?}",
        block.halt
    );
    assert_eq!(block.gas_used, vector.expect.gas_used, "{ctx}: gas_used");
    if let Some(expected) = &vector.expect.output {
        assert_eq!(
            hex_of(&block.output),
            hex_of(expected),
            "{ctx}: return data"
        );
    }
    for (address, slot, expected) in &vector.expect.storage {
        assert_eq!(
            world_block.storage(*address, *slot),
            *expected,
            "{ctx}: post-storage {address}[{}]",
            slot.to_hex_string()
        );
    }
    if let Some(expected) = vector.expect.conformance_events {
        assert_eq!(
            block.trace.conformance.len() as u64,
            expected,
            "{ctx}: conformance event count"
        );
    }
}

/// Emit the per-opcode support matrix: a 16x16 markdown grid of the byte
/// space, mnemonics for implemented opcodes and `·` for bytes that raise
/// the conformance-tagged unknown-opcode halt. Printed to stdout (CI runs
/// with `--nocapture`) and appended to `$GITHUB_STEP_SUMMARY` when set, so
/// every CI run publishes the current conformance surface.
#[test]
fn per_opcode_support_matrix() {
    use mufuzz_evm::Opcode;

    let mut supported = 0usize;
    let mut lines = vec![
        "### EVM opcode support matrix".to_string(),
        String::new(),
        format!(
            "| |{}|",
            (0..16).map(|lo| format!(" _{lo:x} |")).collect::<String>()
        ),
        format!("|---|{}", "---|".repeat(16)),
    ];
    for hi in 0..16u16 {
        let mut row = format!("| **{hi:x}_** |");
        for lo in 0..16u16 {
            let byte = (hi * 16 + lo) as u8;
            match Opcode::from_byte(byte) {
                Opcode::Unknown(_) => row.push_str(" · |"),
                op => {
                    supported += 1;
                    row.push_str(&format!(" {} |", op.mnemonic()));
                }
            }
        }
        lines.push(row);
    }
    lines.push(String::new());
    lines.push(format!(
        "{supported} of 256 byte values implemented; the rest halt with a \
         conformance-tagged trace event."
    ));
    let matrix = lines.join("\n");
    println!("{matrix}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) {
            let _ = writeln!(f, "{matrix}");
        }
    }
    // The implemented surface can only grow: this floor covers the opcode
    // families the ingestion path depends on (PUSH/DUP/SWAP, arithmetic,
    // storage, calls, EXTCODE*, RETURNDATA*, CREATE2, environment).
    assert!(supported >= 130, "opcode surface shrank to {supported}");
}

#[test]
fn all_committed_vectors_pass_on_every_tier() {
    let print_mode = std::env::var("MUFUZZ_CONFORMANCE_PRINT").is_ok();
    let mut total = 0;
    for file in FIXTURE_FILES {
        let vectors = load_vectors(file);
        assert!(!vectors.is_empty(), "{file}: fixture file with no vectors");
        for vector in &vectors {
            check_vector(file, vector, print_mode);
        }
        total += vectors.len();
    }
    assert!(
        total >= 10,
        "expected at least 10 committed vectors, found {total}"
    );
}
