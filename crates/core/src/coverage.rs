//! The campaign's shared coverage map: a fixed-size atomic bitmap over the
//! dense branch-edge ids assigned by [`mufuzz_analysis::EdgeIndex`].
//!
//! Since the interpreter was lowered to basic blocks, the bitmap is sized
//! from the block-granular edge numbering (`EdgeIndex::from_blocks`): two
//! bits per `JUMPI`-terminated block. Every `JUMPI` terminates exactly one
//! block, so the count — and each edge's id — is provably identical to the
//! historical per-`JUMPI` numbering, and snapshots taken before the lowering
//! remain comparable bit for bit.
//!
//! Workers merge the edges covered by every execution with plain
//! `AtomicU64::fetch_or` word updates — no mutex, no allocation — so the
//! coverage bookkeeping of the feedback loop scales with the worker count
//! instead of serialising on the campaign state lock. Each bit transitions
//! from 0 to 1 exactly once, and `fetch_or` returns the previous word, so
//! the worker whose merge flips a bit is the unique observer of that
//! transition: per-execution "new edge" counts are exact even under
//! arbitrary interleaving, and their sum equals the global covered count.
//!
//! Edges that the index cannot number (in practice none: the index is built
//! from the same bytecode the interpreter executes) fall back to a tiny
//! mutex-guarded overflow set so no coverage is ever silently dropped.
//!
//! The module also hosts [`SchedulerEpoch`], the atomic generation counter
//! the sharded seed scheduler uses to publish corpus changes to the workers'
//! local shard mirrors — the other half of keeping the campaign's per-batch
//! feedback loop lock-free.

use mufuzz_analysis::EdgeIndex;
use mufuzz_evm::BranchEdge;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotone generation counter publishing scheduling-state changes to the
/// workers' corpus shards.
///
/// The campaign bumps the epoch (while holding the state lock) whenever the
/// corpus changes in a way shard mirrors must observe — a seed admission or
/// a culling pass. Workers compare the published epoch against their shard's
/// stamp with a single atomic load before every draw; steady-state draws
/// (no corpus change since the last resync) therefore touch no lock at all.
///
/// Publication uses `Release` and reads use `Acquire` so a worker that
/// observes a bumped epoch also observes every write that preceded the bump.
/// (Shard resyncs re-read the corpus under the mutex anyway; the ordering
/// makes the fast-path check independently sound.)
///
/// ```
/// use mufuzz::coverage::SchedulerEpoch;
///
/// let epoch = SchedulerEpoch::new();
/// let stamp = epoch.current();
/// assert_eq!(stamp, 0);
/// epoch.bump();
/// assert!(epoch.current() > stamp); // stale shards resync before drawing
/// ```
#[derive(Debug, Default)]
pub struct SchedulerEpoch(AtomicU64);

impl SchedulerEpoch {
    /// A fresh counter at epoch zero.
    pub fn new() -> SchedulerEpoch {
        SchedulerEpoch::default()
    }

    /// Publish a new generation; returns the bumped epoch value.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Release) + 1
    }

    /// The current generation.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A concurrent branch-edge coverage bitmap.
///
/// Bit `i` records whether the edge with dense id `i` has been covered by
/// any execution of the campaign. All operations are lock-free on the bitmap
/// path and safe to call from any number of worker threads.
///
/// ```
/// use mufuzz::coverage::CoverageMap;
///
/// let map = CoverageMap::new(130); // ids 0..130, i.e. three 64-bit words
/// assert_eq!(map.merge_ids(&[0, 1, 129]), 3); // three new edges
/// assert_eq!(map.merge_ids(&[1, 129]), 0);    // nothing new the second time
/// assert!(map.is_covered(129));
/// assert!(!map.is_covered(2));
/// assert_eq!(map.covered_count(), 3);
/// ```
#[derive(Debug)]
pub struct CoverageMap {
    /// One bit per dense edge id, packed into 64-bit words.
    words: Vec<AtomicU64>,
    /// Number of addressable edge ids (bits).
    edges: usize,
    /// Edges the index could not number. Expected to stay empty; kept so a
    /// surprising edge (e.g. from foreign code) is still counted rather than
    /// silently lost.
    overflow: Mutex<BTreeSet<BranchEdge>>,
}

impl CoverageMap {
    /// Create an empty map able to track `edges` dense ids (`0..edges`).
    pub fn new(edges: usize) -> CoverageMap {
        let words = (0..edges.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        CoverageMap {
            words,
            edges,
            overflow: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of addressable edge ids.
    pub fn capacity(&self) -> usize {
        self.edges
    }

    /// Merge a batch of covered edge ids and return how many were new.
    ///
    /// `ids` is expected sorted (as produced by the execution harness); runs
    /// of ids falling in the same 64-bit word are coalesced into a single
    /// `fetch_or`. Ids outside `0..capacity()` are ignored.
    pub fn merge_ids(&self, ids: &[u32]) -> usize {
        let mut new_edges = 0usize;
        let mut i = 0;
        while i < ids.len() {
            let word_index = (ids[i] / 64) as usize;
            let mut mask = 0u64;
            while i < ids.len() && (ids[i] / 64) as usize == word_index {
                if (ids[i] as usize) < self.edges {
                    mask |= 1u64 << (ids[i] % 64);
                }
                i += 1;
            }
            if mask != 0 {
                let previous = self.words[word_index].fetch_or(mask, Ordering::Relaxed);
                new_edges += (mask & !previous).count_ones() as usize;
            }
        }
        new_edges
    }

    /// True if the edge with dense id `id` has been covered.
    pub fn is_covered(&self, id: u32) -> bool {
        let (word, bit) = ((id / 64) as usize, id % 64);
        (id as usize) < self.edges && self.words[word].load(Ordering::Relaxed) & (1u64 << bit) != 0
    }

    /// True if `edge` has been covered, resolving it through `index` (and the
    /// overflow set for edges the index cannot number).
    pub fn contains_edge(&self, edge: &BranchEdge, index: &EdgeIndex) -> bool {
        match index.id_of(edge) {
            Some(id) => self.is_covered(id),
            None => self
                .overflow
                .lock()
                .expect("coverage overflow poisoned")
                .contains(edge),
        }
    }

    /// Merge the edges of `covered` that the index cannot number into the
    /// overflow set, returning how many were new. Indexed edges are skipped —
    /// they are expected to arrive through [`CoverageMap::merge_ids`].
    pub fn merge_unindexed(&self, covered: &BTreeSet<BranchEdge>, index: &EdgeIndex) -> usize {
        let mut overflow = self.overflow.lock().expect("coverage overflow poisoned");
        let before = overflow.len();
        overflow.extend(
            covered
                .iter()
                .filter(|edge| index.id_of(edge).is_none())
                .copied(),
        );
        overflow.len() - before
    }

    /// Export the packed bitmap words for checkpoint serialization.
    ///
    /// Only the dense bitmap is exported; callers that need lossless
    /// snapshots must check [`CoverageMap::has_overflow`] first (the overflow
    /// set is expected to stay empty — see the module docs).
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Rebuild a map of `edges` ids from words previously exported by
    /// [`CoverageMap::snapshot_words`]. Missing words are zero-filled and
    /// excess words are dropped, so a capacity mismatch degrades to partial
    /// coverage instead of a panic.
    pub fn restore(edges: usize, snapshot: &[u64]) -> CoverageMap {
        let map = CoverageMap::new(edges);
        for (word, &value) in map.words.iter().zip(snapshot) {
            word.store(value, Ordering::Relaxed);
        }
        map
    }

    /// True if any covered edge had to detour through the overflow set (and
    /// would therefore be lost by [`CoverageMap::snapshot_words`]).
    pub fn has_overflow(&self) -> bool {
        !self
            .overflow
            .lock()
            .expect("coverage overflow poisoned")
            .is_empty()
    }

    /// Total number of distinct covered edges (bitmap population plus any
    /// overflow edges).
    pub fn covered_count(&self) -> usize {
        let bits: usize = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum();
        bits + self
            .overflow
            .lock()
            .expect("coverage overflow poisoned")
            .len()
    }
}

/// A single-threaded coverage bitmap for round mode's frozen slot views.
///
/// Each round slot mutates against the coverage state frozen at the round
/// barrier plus its own discoveries; nothing is shared, so the atomic
/// machinery of [`CoverageMap`] is unnecessary. The bit numbering matches
/// `CoverageMap` word for word — a slot view is seeded directly from
/// [`CoverageMap::snapshot_words`].
///
/// Edges the index cannot number are deliberately *not* tracked: a slot only
/// uses its local map to decide candidacy, and the round barrier re-merges
/// candidates into the shared map (which does track overflow), so nothing is
/// lost — an unindexed edge simply cannot make a mutant a candidate.
///
/// ```
/// use mufuzz::coverage::{CoverageMap, LocalCoverage};
///
/// let shared = CoverageMap::new(130);
/// shared.merge_ids(&[0, 129]);
/// let mut local = LocalCoverage::from_words(130, shared.snapshot_words());
/// assert_eq!(local.merge_ids(&[0, 1, 129]), 1); // only id 1 is new locally
/// assert!(local.is_covered(1));
/// assert_eq!(local.covered_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct LocalCoverage {
    /// One bit per dense edge id, packed into 64-bit words.
    words: Vec<u64>,
    /// Number of addressable edge ids (bits).
    edges: usize,
}

impl LocalCoverage {
    /// Build a local map of `edges` ids seeded from packed bitmap words (as
    /// exported by [`CoverageMap::snapshot_words`]). Missing words are
    /// zero-filled and excess words dropped, mirroring
    /// [`CoverageMap::restore`].
    pub fn from_words(edges: usize, mut words: Vec<u64>) -> LocalCoverage {
        words.resize(edges.div_ceil(64), 0);
        LocalCoverage { words, edges }
    }

    /// Merge a batch of covered edge ids and return how many were new to
    /// this local map. `ids` is expected sorted; out-of-range ids are
    /// ignored — the same contract as [`CoverageMap::merge_ids`].
    pub fn merge_ids(&mut self, ids: &[u32]) -> usize {
        let mut new_edges = 0usize;
        for &id in ids {
            if (id as usize) < self.edges {
                let (word, bit) = ((id / 64) as usize, 1u64 << (id % 64));
                if self.words[word] & bit == 0 {
                    self.words[word] |= bit;
                    new_edges += 1;
                }
            }
        }
        new_edges
    }

    /// True if the edge with dense id `id` is covered in this local view.
    pub fn is_covered(&self, id: u32) -> bool {
        let (word, bit) = ((id / 64) as usize, id % 64);
        (id as usize) < self.edges && self.words[word] & (1u64 << bit) != 0
    }

    /// True if `edge` is covered in this local view, resolving it through
    /// `index`. Unindexed edges report uncovered (see the type docs).
    pub fn contains_edge(&self, edge: &BranchEdge, index: &EdgeIndex) -> bool {
        index.id_of(edge).is_some_and(|id| self.is_covered(id))
    }

    /// Number of covered edges in this local view.
    pub fn covered_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_analysis::ControlFlowGraph;
    use mufuzz_evm::Address;
    use std::thread;

    #[test]
    fn epoch_bumps_are_monotone_and_observable_across_threads() {
        let epoch = SchedulerEpoch::new();
        assert_eq!(epoch.current(), 0);
        assert_eq!(epoch.bump(), 1);
        assert_eq!(epoch.bump(), 2);
        assert_eq!(epoch.current(), 2);
        // Concurrent bumps never lose a generation.
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        epoch.bump();
                    }
                });
            }
        });
        assert_eq!(epoch.current(), 402);
    }

    #[test]
    fn merge_counts_only_new_bits() {
        let map = CoverageMap::new(200);
        assert_eq!(map.merge_ids(&[0, 63, 64, 199]), 4);
        assert_eq!(map.merge_ids(&[0, 63, 64, 199]), 0);
        assert_eq!(map.merge_ids(&[1, 63, 198, 199]), 2);
        assert_eq!(map.covered_count(), 6);
        assert!(map.is_covered(198));
        assert!(!map.is_covered(100));
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let map = CoverageMap::new(10);
        assert_eq!(map.capacity(), 10);
        assert_eq!(map.merge_ids(&[9, 10, 11, 5_000]), 1);
        assert!(!map.is_covered(10));
        assert!(!map.is_covered(5_000));
        assert_eq!(map.covered_count(), 1);
    }

    #[test]
    fn empty_map_accepts_merges() {
        let map = CoverageMap::new(0);
        assert_eq!(map.merge_ids(&[]), 0);
        assert_eq!(map.merge_ids(&[0, 1]), 0);
        assert_eq!(map.covered_count(), 0);
    }

    #[test]
    fn concurrent_merges_produce_the_exact_union() {
        // 8 threads repeatedly merge overlapping id slices; the per-merge
        // "new edge" counts must sum to exactly the final population, i.e.
        // every 0→1 transition is observed exactly once.
        let map = CoverageMap::new(1024);
        let total_new: usize = thread::scope(|scope| {
            let handles: Vec<_> = (0..8u32)
                .map(|t| {
                    let map = &map;
                    scope.spawn(move || {
                        let mut new_edges = 0usize;
                        for round in 0..50u32 {
                            let ids: Vec<u32> =
                                (0..1024).filter(|id| (id + t + round) % 3 != 0).collect();
                            new_edges += map.merge_ids(&ids);
                        }
                        new_edges
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total_new, map.covered_count());
        assert_eq!(map.covered_count(), 1024);
    }

    #[test]
    fn snapshot_words_round_trip_restores_the_bitmap() {
        let map = CoverageMap::new(200);
        map.merge_ids(&[0, 63, 64, 130, 199]);
        assert!(!map.has_overflow());
        let restored = CoverageMap::restore(200, &map.snapshot_words());
        assert_eq!(restored.covered_count(), map.covered_count());
        for id in [0u32, 63, 64, 130, 199] {
            assert!(restored.is_covered(id));
        }
        assert!(!restored.is_covered(1));
        // Restoring into a larger capacity zero-fills the missing words.
        let grown = CoverageMap::restore(300, &map.snapshot_words());
        assert_eq!(grown.covered_count(), 5);
    }

    #[test]
    fn local_coverage_mirrors_the_shared_bitmap_semantics() {
        let shared = CoverageMap::new(200);
        shared.merge_ids(&[0, 63, 64, 199]);
        let mut local = LocalCoverage::from_words(200, shared.snapshot_words());
        assert_eq!(local.covered_count(), 4);
        // Only locally-new bits count; out-of-range ids are ignored.
        assert_eq!(local.merge_ids(&[0, 1, 199, 200, 5_000]), 1);
        assert!(local.is_covered(1));
        assert!(!local.is_covered(2));
        assert!(!local.is_covered(5_000));
        assert_eq!(local.covered_count(), 5);
        // Local merges never leak back into the shared map.
        assert_eq!(shared.covered_count(), 4);
        // Growing the capacity zero-fills; a fresh slot view from the
        // updated shared words sees exactly the shared population.
        let grown = LocalCoverage::from_words(300, shared.snapshot_words());
        assert_eq!(grown.covered_count(), 4);
    }

    #[test]
    fn local_coverage_reports_unindexed_edges_uncovered() {
        let cfg = ControlFlowGraph::build(&[]);
        let index = EdgeIndex::build(&cfg, Address::from_low_u64(1));
        let local = LocalCoverage::from_words(index.len(), Vec::new());
        let edge = BranchEdge {
            code_address: Address::from_low_u64(2),
            pc: 7,
            taken: true,
        };
        assert!(!local.contains_edge(&edge, &index));
    }

    #[test]
    fn unindexed_edges_flow_into_the_overflow_set() {
        let cfg = ControlFlowGraph::build(&[]);
        let index = EdgeIndex::build(&cfg, Address::from_low_u64(1));
        let map = CoverageMap::new(index.len());
        let edge = BranchEdge {
            code_address: Address::from_low_u64(2),
            pc: 7,
            taken: true,
        };
        let covered: BTreeSet<BranchEdge> = [edge].into_iter().collect();
        assert!(!map.contains_edge(&edge, &index));
        assert_eq!(map.merge_unindexed(&covered, &index), 1);
        assert_eq!(map.merge_unindexed(&covered, &index), 0);
        assert!(map.contains_edge(&edge, &index));
        assert_eq!(map.covered_count(), 1);
    }
}
