//! Hand-written benchmark contracts.
//!
//! These are the fixed reference points of the corpus: the paper's two
//! running examples (the Crowdsale contract of Figure 1 and the guess-number
//! Game of Figure 4) plus at least one representative vulnerable contract per
//! bug class, each carrying its ground-truth annotations.

use mufuzz_oracles::{Annotation, BugClass};

/// A benchmark contract: source code plus ground-truth annotations.
#[derive(Clone, Debug)]
pub struct BenchContract {
    /// Unique name of the benchmark entry.
    pub name: String,
    /// Mini-Solidity source code.
    pub source: String,
    /// Annotated vulnerabilities (empty for benign contracts).
    pub annotations: Vec<Annotation>,
}

impl BenchContract {
    /// Create a benchmark contract.
    pub fn new(name: &str, source: &str, annotations: Vec<Annotation>) -> BenchContract {
        BenchContract {
            name: name.to_string(),
            source: source.to_string(),
            annotations,
        }
    }

    /// True if the contract carries at least one annotation of the class.
    pub fn has_bug(&self, class: BugClass) -> bool {
        self.annotations.iter().any(|a| a.class == class)
    }
}

/// The paper's Figure 1: the simplified Crowdsale contract whose guarded bug
/// needs the sequence `[invest, ..., invest, withdraw]`.
pub const CROWDSALE_SOURCE: &str = r#"
contract Crowdsale {
    uint256 phase = 0;
    uint256 goal;
    uint256 invested;
    address owner;
    mapping(address => uint256) invests;

    constructor() public {
        goal = 100 ether;
        invested = 0;
        owner = msg.sender;
    }

    function invest(uint256 donations) public payable {
        if (invested < goal) {
            invests[msg.sender] += donations;
            invested += donations;
            phase = 0;
        } else {
            phase = 1;
        }
    }

    function refund() public {
        if (phase == 0) {
            msg.sender.transfer(invests[msg.sender]);
            invests[msg.sender] = 0;
        }
    }

    function withdraw() public {
        if (phase == 1) {
            bug();
            owner.transfer(invested);
        }
    }
}
"#;

/// The paper's Figure 4: the guess-number Game contract with a strict
/// `msg.value` guard, nested branches and a potential integer overflow.
pub const GAME_SOURCE: &str = r#"
contract Game {
    mapping(address => uint256) balance;

    function guessNum(uint256 number) public payable {
        uint256 random = uint256(keccak256(abi.encodePacked(block.timestamp, now))) % 200;
        require(msg.value == 88 finney);
        if (number < random) {
            uint256 luckyNum = number % 2;
            if (luckyNum == 0) {
                balance[msg.sender] += msg.value * 10;
            } else {
                balance[msg.sender] += msg.value * 5;
            }
        }
    }
}
"#;

/// The motivating Crowdsale example (Figure 1).
pub fn crowdsale() -> BenchContract {
    BenchContract::new("crowdsale_fig1", CROWDSALE_SOURCE, vec![])
}

/// The guess-number Game example (Figure 4).
pub fn game() -> BenchContract {
    BenchContract::new(
        "game_fig4",
        GAME_SOURCE,
        vec![Annotation::in_function(
            BugClass::BlockDependency,
            "guessNum",
        )],
    )
}

/// A reentrancy-vulnerable bank (DAO-style withdraw).
pub fn reentrant_bank() -> BenchContract {
    BenchContract::new(
        "reentrant_bank",
        r#"
        contract Bank {
            mapping(address => uint256) balances;
            function deposit() public payable { balances[msg.sender] += msg.value; }
            function withdraw() public {
                if (balances[msg.sender] > 0) {
                    msg.sender.call.value(balances[msg.sender])();
                    balances[msg.sender] = 0;
                }
            }
            function balanceOf(address who) public returns (uint256) { return balances[who]; }
        }
        "#,
        vec![Annotation::in_function(BugClass::Reentrancy, "withdraw")],
    )
}

/// A timestamp-dependent lottery.
pub fn timestamp_lottery() -> BenchContract {
    BenchContract::new(
        "timestamp_lottery",
        r#"
        contract Lottery {
            uint256 pot;
            address lastWinner;
            function enter() public payable { pot += msg.value; }
            function draw() public {
                if (block.timestamp % 13 == 0) {
                    lastWinner = msg.sender;
                    msg.sender.transfer(pot);
                    pot = 0;
                }
            }
            function jackpot() public {
                if (block.number % 1000 == 7) {
                    msg.sender.transfer(pot);
                }
            }
        }
        "#,
        vec![
            Annotation::in_function(BugClass::BlockDependency, "draw"),
            Annotation::in_function(BugClass::BlockDependency, "jackpot"),
        ],
    )
}

/// An unprotected delegatecall proxy.
pub fn delegatecall_proxy() -> BenchContract {
    BenchContract::new(
        "delegatecall_proxy",
        r#"
        contract Proxy {
            address owner;
            uint256 nonce;
            constructor() public { owner = msg.sender; }
            function forward(address callee, uint256 data) public {
                nonce += 1;
                callee.delegatecall(data);
            }
            function forwardSafe(address callee, uint256 data) public {
                require(msg.sender == owner);
                nonce += 1;
                callee.delegatecall(data);
            }
        }
        "#,
        vec![Annotation::in_function(
            BugClass::UnprotectedDelegatecall,
            "forward",
        )],
    )
}

/// An ERC20-style token with an unchecked multiplication/addition overflow.
pub fn overflow_token() -> BenchContract {
    BenchContract::new(
        "overflow_token",
        r#"
        contract Token {
            mapping(address => uint256) balances;
            uint256 totalSupply;
            uint256 price = 2;
            function buy(uint256 amount) public payable {
                uint256 cost = amount * price;
                require(msg.value >= cost);
                balances[msg.sender] += amount;
                totalSupply += amount;
            }
            function batchTransfer(address to, uint256 count, uint256 each) public {
                uint256 total = count * each;
                require(balances[msg.sender] >= total);
                balances[msg.sender] -= total;
                balances[to] += count * each;
            }
        }
        "#,
        vec![
            Annotation::in_function(BugClass::IntegerOverflow, "buy"),
            Annotation::in_function(BugClass::IntegerOverflow, "batchTransfer"),
        ],
    )
}

/// A vault that accepts ether but can never release it.
pub fn frozen_vault() -> BenchContract {
    BenchContract::new(
        "frozen_vault",
        r#"
        contract Vault {
            mapping(address => uint256) deposits;
            uint256 total;
            function lock() public payable {
                deposits[msg.sender] += msg.value;
                total += msg.value;
            }
            function audit() public returns (uint256) { return total; }
        }
        "#,
        vec![Annotation::contract(BugClass::EtherFreezing)],
    )
}

/// A contract anyone can self-destruct.
pub fn suicidal_wallet() -> BenchContract {
    BenchContract::new(
        "suicidal_wallet",
        r#"
        contract Wallet {
            address owner;
            uint256 funds;
            constructor() public { owner = msg.sender; }
            function store() public payable { funds += msg.value; }
            function sweep() public {
                selfdestruct(msg.sender);
            }
        }
        "#,
        vec![Annotation::in_function(
            BugClass::UnprotectedSelfDestruct,
            "sweep",
        )],
    )
}

/// A game that compares the contract balance for strict equality.
pub fn strict_equality_game() -> BenchContract {
    BenchContract::new(
        "strict_equality_game",
        r#"
        contract EqualGame {
            address winner;
            function play() public payable {
                if (address(this).balance == 10 ether) {
                    winner = msg.sender;
                    msg.sender.transfer(address(this).balance);
                }
            }
        }
        "#,
        vec![Annotation::in_function(
            BugClass::StrictEtherEquality,
            "play",
        )],
    )
}

/// Authentication via `tx.origin`.
pub fn tx_origin_auth() -> BenchContract {
    BenchContract::new(
        "tx_origin_auth",
        r#"
        contract OriginAuth {
            address owner;
            uint256 secret;
            constructor() public { owner = msg.sender; }
            function update(uint256 value) public {
                require(tx.origin == owner);
                secret = value;
            }
            function drain() public {
                if (tx.origin == owner) {
                    msg.sender.transfer(address(this).balance);
                }
            }
        }
        "#,
        vec![
            Annotation::in_function(BugClass::TxOriginUse, "update"),
            Annotation::in_function(BugClass::TxOriginUse, "drain"),
        ],
    )
}

/// Unchecked low-level sends.
pub fn unchecked_send() -> BenchContract {
    BenchContract::new(
        "unchecked_send",
        r#"
        contract Payout {
            mapping(address => uint256) owed;
            uint256 paid;
            function credit(address who, uint256 amount) public payable { owed[who] += amount; }
            function pay(address who) public {
                who.send(owed[who]);
                paid += owed[who];
                owed[who] = 0;
            }
            function payChecked(address who) public {
                require(who.send(owed[who]));
                owed[who] = 0;
            }
        }
        "#,
        vec![Annotation::in_function(BugClass::UnhandledException, "pay")],
    )
}

/// A benign multi-function contract with no annotated bugs; used for false
/// positive analysis.
pub fn benign_ledger() -> BenchContract {
    BenchContract::new(
        "benign_ledger",
        r#"
        contract Ledger {
            address owner;
            mapping(address => uint256) balances;
            uint256 total;
            constructor() public { owner = msg.sender; }
            function deposit() public payable {
                require(msg.value > 0);
                balances[msg.sender] += msg.value;
                total += msg.value;
            }
            function withdraw(uint256 amount) public {
                require(balances[msg.sender] >= amount);
                balances[msg.sender] -= amount;
                total -= amount;
                msg.sender.transfer(amount);
            }
            function close() public {
                require(msg.sender == owner);
                selfdestruct(owner);
            }
        }
        "#,
        vec![],
    )
}

/// All hand-written benchmark contracts.
pub fn all_handwritten() -> Vec<BenchContract> {
    vec![
        crowdsale(),
        game(),
        reentrant_bank(),
        timestamp_lottery(),
        delegatecall_proxy(),
        overflow_token(),
        frozen_vault(),
        suicidal_wallet(),
        strict_equality_game(),
        tx_origin_auth(),
        unchecked_send(),
        benign_ledger(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    #[test]
    fn every_handwritten_contract_compiles() {
        for c in all_handwritten() {
            let compiled = compile_source(&c.source);
            assert!(
                compiled.is_ok(),
                "{} failed to compile: {:?}",
                c.name,
                compiled.err()
            );
            assert!(compiled.unwrap().instruction_count() > 20, "{}", c.name);
        }
    }

    #[test]
    fn every_bug_class_is_covered_by_some_contract() {
        let contracts = all_handwritten();
        for class in BugClass::ALL {
            assert!(
                contracts.iter().any(|c| c.has_bug(class)),
                "no handwritten contract annotated with {class}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let contracts = all_handwritten();
        let names: std::collections::BTreeSet<&str> =
            contracts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), contracts.len());
    }

    #[test]
    fn benign_contract_has_no_annotations() {
        assert!(benign_ledger().annotations.is_empty());
        assert!(!benign_ledger().has_bug(BugClass::Reentrancy));
    }
}
