//! Regenerates Figure 6: overall branch coverage of MuFuzz, IR-Fuzz,
//! ConFuzzius and sFuzz on small and large contracts.
//!
//! Paper reference values: small 90 / 86 / 82 / 65 (%), large 82 / 76 / 70 / 56 (%).
//! Scale with `MUFUZZ_CONTRACTS` and `MUFUZZ_EXECS`; size the shared fleet
//! pool with `--workers N` (or `MUFUZZ_WORKERS`; 0 = auto).

/// Per-tool final coverage rows (small, large).
struct OverallRows {
    rows: Vec<(String, f64, f64)>,
}

use mufuzz_bench::{coverage_over_time, env_param, table, workers_param};
use mufuzz_corpus::{d1_large, d1_small};
use std::time::Instant;

fn main() {
    let contracts = env_param("MUFUZZ_CONTRACTS", 12);
    let execs = env_param("MUFUZZ_EXECS", 500);
    let workers = workers_param();
    let pool = mufuzz_bench::fleet_threads(workers);

    let small = d1_small(contracts);
    let large = d1_large(contracts.div_ceil(2));
    // Large contracts receive twice the budget, mirroring the paper's
    // 10-minute / 20-minute split.
    let wall = Instant::now();
    let small_series = coverage_over_time("small", &small.contracts, execs, 1, 1, workers);
    let large_series = coverage_over_time("large", &large.contracts, execs * 2, 1, 1, workers);
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let total_executions = small_series.total_executions + large_series.total_executions;
    let result = OverallRows {
        rows: small_series
            .final_coverage
            .into_iter()
            .zip(large_series.final_coverage)
            .map(|((tool, s), (_, l))| (tool, s, l))
            .collect(),
    };

    let paper = [
        ("MuFuzz", 90.0, 82.0),
        ("IR-Fuzz", 86.0, 76.0),
        ("ConFuzzius", 82.0, 70.0),
        ("sFuzz", 65.0, 56.0),
    ];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|(tool, s, l)| {
            let reference = paper.iter().find(|(name, _, _)| name == tool);
            vec![
                tool.clone(),
                format!("{:.1}%", s * 100.0),
                format!("{:.1}%", l * 100.0),
                reference
                    .map(|(_, ps, pl)| format!("{ps:.0}% / {pl:.0}%"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();

    println!(
        "Figure 6 — overall branch coverage ({} small / {} large contracts, {execs} executions each)",
        small.len(),
        large.len()
    );
    println!();
    print!(
        "{}",
        table::render(
            &[
                "Tool",
                "Small (measured)",
                "Large (measured)",
                "Paper (small/large)"
            ],
            &rows
        )
    );
    println!();
    println!(
        "throughput: {:.0} execs/sec ({} executions, fleet pool of {pool} thread(s))",
        total_executions as f64 / elapsed,
        total_executions
    );
    println!();
    println!(
        "Expected shape: MuFuzz > IR-Fuzz > ConFuzzius > sFuzz on both datasets, with a\n\
         smaller small-to-large coverage drop for MuFuzz than for the baselines."
    );
}
