//! Property-based tests for the language substrate: ABI encode/decode round
//! trips, assembler label resolution and compiler determinism.

use mufuzz_evm::{disassemble, Address, Opcode, U256};
use mufuzz_lang::{compile_source, AbiValue, Assembler, FunctionAbi, ParamType};
use proptest::prelude::*;

fn arb_param_types() -> impl Strategy<Value = Vec<ParamType>> {
    proptest::collection::vec(
        prop_oneof![
            Just(ParamType::Uint256),
            Just(ParamType::Int256),
            Just(ParamType::Address),
            Just(ParamType::Bool),
            Just(ParamType::FixedBytes(4)),
            Just(ParamType::FixedBytes(32)),
            Just(ParamType::Bytes),
            Just(ParamType::Str),
            Just(ParamType::Array(Box::new(ParamType::Uint256))),
            Just(ParamType::Array(Box::new(ParamType::Address))),
        ],
        0..5,
    )
}

fn arb_value_for(ty: &ParamType) -> BoxedStrategy<AbiValue> {
    match ty {
        ParamType::Uint256 => proptest::array::uniform32(any::<u8>())
            .prop_map(|b| AbiValue::Uint(U256::from_be_bytes(b)))
            .boxed(),
        ParamType::Int256 => proptest::array::uniform32(any::<u8>())
            .prop_map(|b| AbiValue::Int(U256::from_be_bytes(b)))
            .boxed(),
        ParamType::Address => any::<u64>()
            .prop_map(|n| AbiValue::Address(Address::from_low_u64(n)))
            .boxed(),
        ParamType::Bool => any::<bool>().prop_map(AbiValue::Bool).boxed(),
        ParamType::FixedBytes(n) => {
            let n = *n as usize;
            proptest::collection::vec(any::<u8>(), n..n + 1)
                .prop_map(AbiValue::FixedBytes)
                .boxed()
        }
        ParamType::Bytes => proptest::collection::vec(any::<u8>(), 0..70)
            .prop_map(AbiValue::Bytes)
            .boxed(),
        // Printable ASCII so encode/decode round-trips exactly (the decoder
        // reads raw bytes back as UTF-8).
        ParamType::Str => "[ -~]{0,40}".prop_map(AbiValue::Str).boxed(),
        ParamType::Array(inner) => {
            let elems = arb_value_for(inner);
            proptest::collection::vec(elems, 0..5)
                .prop_map(AbiValue::Array)
                .boxed()
        }
    }
}

proptest! {
    #[test]
    fn abi_encode_decode_round_trips(types in arb_param_types(), seed in any::<u64>()) {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: types.clone(),
            payable: false,
            selector: [seed as u8, (seed >> 8) as u8, (seed >> 16) as u8, (seed >> 24) as u8],
        };
        // Build deterministic values from the seed via proptest's own RNG
        // would be nicer, but a fixed derivation keeps the test simple.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let values: Vec<AbiValue> = types
            .iter()
            .map(|t| arb_value_for(t).new_tree(&mut runner).unwrap().current())
            .collect();
        let encoded = abi.encode_call(&values);
        // Static-only ABIs stay on the exact legacy word layout; dynamic
        // arguments append a word-aligned tail on top of the head.
        if types.iter().all(|t| !t.is_dynamic()) {
            prop_assert_eq!(encoded.len(), abi.calldata_len());
        } else {
            prop_assert!(encoded.len() > abi.calldata_len());
            prop_assert_eq!((encoded.len() - 4) % 32, 0);
        }
        let decoded = abi.decode_args(&encoded);
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn assembler_emits_resolvable_labels(jumps in 1usize..20) {
        let mut asm = Assembler::new();
        let labels: Vec<_> = (0..jumps).map(|_| asm.new_label()).collect();
        for &label in &labels {
            asm.push_u64(1);
            asm.push_label(label);
            asm.op(Opcode::JumpI);
        }
        for &label in &labels {
            asm.place(label);
            asm.op(Opcode::Stop);
        }
        let (code, offsets) = asm.assemble().unwrap();
        // Every resolved offset points at a JUMPDEST byte.
        for (_, offset) in offsets {
            prop_assert_eq!(code[offset], Opcode::JumpDest.to_byte());
        }
    }

    #[test]
    fn push_round_trips_through_disassembler(value in proptest::array::uniform32(any::<u8>())) {
        let v = U256::from_be_bytes(value);
        let mut asm = Assembler::new();
        asm.push_u256(v);
        asm.op(Opcode::Stop);
        let (code, _) = asm.assemble().unwrap();
        let instrs = disassemble(&code);
        prop_assert_eq!(U256::from_be_slice(&instrs[0].immediate), v);
    }

    #[test]
    fn generated_counter_contracts_compile_deterministically(
        slots in 1usize..6,
        functions in 1usize..6,
    ) {
        // A tiny structural generator distinct from the corpus one: every
        // combination of slot/function counts must compile, and compilation is
        // a pure function of the source.
        let mut src = String::from("contract P {\n");
        for s in 0..slots {
            src.push_str(&format!("    uint256 v{s};\n"));
        }
        for f in 0..functions {
            let target = f % slots;
            src.push_str(&format!(
                "    function f{f}(uint256 x) public {{ if (x > {f}) {{ v{target} += x; }} }}\n"
            ));
        }
        src.push('}');
        let a = compile_source(&src).unwrap();
        let b = compile_source(&src).unwrap();
        prop_assert_eq!(a.runtime.clone(), b.runtime);
        prop_assert_eq!(a.abi.functions.len(), functions);
        // Every selector is unique.
        let selectors: std::collections::BTreeSet<[u8; 4]> =
            a.abi.functions.iter().map(|f| f.selector).collect();
        prop_assert_eq!(selectors.len(), functions);
    }
}
