//! Baseline fuzzing strategies.
//!
//! The paper compares MuFuzz against sFuzz, ConFuzzius, Smartian and IR-Fuzz
//! (§V-A). We re-implement each tool's *strategy* on top of the shared
//! EVM/compiler substrate, so differences in the results isolate exactly the
//! algorithmic choices the paper attributes its gains to:
//!
//! | Tool            | sequence ordering | repetition | mask | distance | energy |
//! |-----------------|-------------------|------------|------|----------|--------|
//! | sFuzz-like      | random            | no         | no   | yes      | fixed  |
//! | ConFuzzius-like | data-flow         | no         | no   | yes      | fixed  |
//! | Smartian-like   | data-flow         | no         | no   | no       | fixed  |
//! | IR-Fuzz-like    | data-flow         | yes        | no   | yes      | dynamic|
//! | MuFuzz          | data-flow         | yes        | yes  | yes      | dynamic|

use mufuzz::{CampaignHandle, CampaignReport, CampaignService, Fuzzer, FuzzerConfig, HarnessError};
use mufuzz_lang::CompiledContract;

/// One campaign request: the budget, the RNG seed and the lane count.
///
/// A request is strategy-agnostic — the [`FuzzingStrategy`] supplies the
/// configuration, the request supplies the per-run knobs. Single-lane
/// requests (the default) are deterministic for a given seed.
#[derive(Clone, Copy, Debug)]
pub struct FuzzRequest {
    /// Execution budget (`FuzzerConfig::max_executions()`).
    pub budget: usize,
    /// Campaign RNG seed.
    pub rng_seed: u64,
    /// Campaign lanes (`FuzzerConfig::workers`). One lane keeps the run
    /// deterministic; experiments get their parallelism by submitting many
    /// campaigns to one [`CampaignService`] instead.
    pub lanes: usize,
}

impl FuzzRequest {
    /// A single-lane (deterministic) request.
    pub fn new(budget: usize, rng_seed: u64) -> FuzzRequest {
        FuzzRequest {
            budget,
            rng_seed,
            lanes: 1,
        }
    }

    /// Set the lane count. Campaigns with more than one lane are not
    /// deterministic.
    pub fn with_lanes(mut self, lanes: usize) -> FuzzRequest {
        self.lanes = lanes.max(1);
        self
    }
}

/// A named fuzzing strategy that can be run on a compiled contract.
///
/// Strategies are stateless descriptions (the RNG seed is passed per run), so
/// they are `Send + Sync` and experiments can fan campaigns out over a
/// [`CampaignService`].
pub trait FuzzingStrategy: Send + Sync {
    /// Display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// The configuration this strategy uses for a given budget and RNG seed.
    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig;

    /// Run one campaign to completion on the calling thread.
    fn fuzz(
        &self,
        compiled: CompiledContract,
        req: &FuzzRequest,
    ) -> Result<CampaignReport, HarnessError> {
        let config = self
            .config(req.budget, req.rng_seed)
            .with_workers(req.lanes);
        let mut fuzzer = Fuzzer::new(compiled, config)?;
        Ok(fuzzer.run())
    }

    /// Submit one campaign to a shared [`CampaignService`] without blocking;
    /// the returned handle yields the report. This is how experiments fan
    /// many contracts out over one pool.
    fn submit(
        &self,
        service: &CampaignService,
        compiled: CompiledContract,
        req: &FuzzRequest,
    ) -> Result<CampaignHandle, HarnessError> {
        let config = self
            .config(req.budget, req.rng_seed)
            .with_workers(req.lanes);
        service.submit(compiled, config)
    }
}

/// The full MuFuzz system.
#[derive(Clone, Copy, Debug, Default)]
pub struct MuFuzzStrategy;

impl FuzzingStrategy for MuFuzzStrategy {
    fn name(&self) -> &'static str {
        "MuFuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions).with_rng_seed(rng_seed)
    }
}

/// sFuzz-style baseline: random transaction ordering, AFL-style unrestricted
/// mutation, branch-distance seed selection, fixed energy.
#[derive(Clone, Copy, Debug, Default)]
pub struct SFuzzStrategy;

impl FuzzingStrategy for SFuzzStrategy {
    fn name(&self) -> &'static str {
        "sFuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        let mut config = FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_aware()
            .without_mask_guidance()
            .without_dynamic_energy();
        // sFuzz mutates with AFL's fixed interesting values; it has no
        // component that extracts comparison constants from the contract.
        config.harvest_constants = false;
        config
    }
}

/// ConFuzzius-style baseline: data-dependency transaction ordering (but no
/// consecutive repetition), unrestricted mutation, branch-distance feedback.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConFuzziusStrategy;

impl FuzzingStrategy for ConFuzziusStrategy {
    fn name(&self) -> &'static str {
        "ConFuzzius"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_repetition()
            .without_mask_guidance()
            .without_dynamic_energy()
    }
}

/// Smartian-style baseline: static + dynamic data-flow ordering, no branch
/// distance feedback, no repetition, no masking.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmartianStrategy;

impl FuzzingStrategy for SmartianStrategy {
    fn name(&self) -> &'static str {
        "Smartian"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        let mut config = FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_sequence_repetition()
            .without_mask_guidance()
            .without_dynamic_energy();
        config.enable_branch_distance = false;
        config
    }
}

/// IR-Fuzz-style baseline: invocation ordering with prolongation (repetition)
/// and branch-revisiting energy, but no mutation masking.
#[derive(Clone, Copy, Debug, Default)]
pub struct IrFuzzStrategy;

impl FuzzingStrategy for IrFuzzStrategy {
    fn name(&self) -> &'static str {
        "IR-Fuzz"
    }

    fn config(&self, max_executions: usize, rng_seed: u64) -> FuzzerConfig {
        FuzzerConfig::mufuzz(max_executions)
            .with_rng_seed(rng_seed)
            .without_mask_guidance()
    }
}

/// The four baseline fuzzers the coverage figures compare against, in the
/// order the paper plots them.
pub fn coverage_baselines() -> Vec<Box<dyn FuzzingStrategy>> {
    vec![
        Box::new(MuFuzzStrategy),
        Box::new(IrFuzzStrategy),
        Box::new(ConFuzziusStrategy),
        Box::new(SFuzzStrategy),
    ]
}

/// All fuzzing strategies, including Smartian (which the paper only compares
/// on bug finding because it reports no branch coverage).
pub fn all_fuzzers() -> Vec<Box<dyn FuzzingStrategy>> {
    vec![
        Box::new(MuFuzzStrategy),
        Box::new(IrFuzzStrategy),
        Box::new(SmartianStrategy),
        Box::new(ConFuzziusStrategy),
        Box::new(SFuzzStrategy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_corpus::contracts;
    use mufuzz_lang::compile_source;

    #[test]
    fn strategy_configs_differ_as_documented() {
        let sfuzz = SFuzzStrategy.config(100, 1);
        assert!(!sfuzz.enable_sequence_aware && !sfuzz.enable_mask_guidance);
        assert!(sfuzz.enable_branch_distance);

        let confuzzius = ConFuzziusStrategy.config(100, 1);
        assert!(confuzzius.enable_sequence_aware && !confuzzius.enable_sequence_repetition);

        let smartian = SmartianStrategy.config(100, 1);
        assert!(!smartian.enable_branch_distance);

        let irfuzz = IrFuzzStrategy.config(100, 1);
        assert!(irfuzz.enable_sequence_repetition && !irfuzz.enable_mask_guidance);
        assert!(irfuzz.enable_dynamic_energy);

        let mufuzz = MuFuzzStrategy.config(100, 1);
        assert!(mufuzz.enable_mask_guidance && mufuzz.enable_sequence_repetition);
    }

    #[test]
    fn all_strategies_run_on_the_crowdsale_contract() {
        let source = contracts::crowdsale().source;
        for strategy in all_fuzzers() {
            let compiled = compile_source(&source).unwrap();
            let report = strategy.fuzz(compiled, &FuzzRequest::new(120, 9)).unwrap();
            assert!(
                report.covered_edges > 0,
                "{} covered nothing",
                strategy.name()
            );
        }
    }

    #[test]
    fn mufuzz_matches_or_beats_sfuzz_on_the_motivating_example() {
        let source = contracts::crowdsale().source;
        let req = FuzzRequest::new(400, 21);
        let mufuzz = MuFuzzStrategy
            .fuzz(compile_source(&source).unwrap(), &req)
            .unwrap();
        let sfuzz = SFuzzStrategy
            .fuzz(compile_source(&source).unwrap(), &req)
            .unwrap();
        assert!(
            mufuzz.covered_edges >= sfuzz.covered_edges,
            "MuFuzz {} < sFuzz {}",
            mufuzz.covered_edges,
            sfuzz.covered_edges
        );
    }
}
