//! Branch-distance feedback (sFuzz-style, adopted by MuFuzz §IV-B).
//!
//! For every conditional branch a test input reaches but does not flip, the
//! distance measures how far the comparison operands are from flipping the
//! outcome. Smaller distance = closer to covering the missing edge. Distances
//! are normalised to `[0, 1)` so they compose across branches.

use mufuzz_evm::{BranchEdge, ExecutionTrace, U256};
use std::collections::HashMap;

/// Normalise a raw distance to `[0, 1)`: `d / (d + 1)`.
pub fn normalize(distance: U256) -> f64 {
    let d = distance.to_f64_lossy();
    d / (d + 1.0)
}

/// The per-uncovered-edge distance information extracted from one execution.
#[derive(Clone, Debug, Default)]
pub struct DistanceMap {
    /// For each branch edge that was *not* taken while its sibling edge was
    /// executed, the normalised distance to flipping the branch.
    pub distances: HashMap<BranchEdge, f64>,
}

impl DistanceMap {
    /// Extract distances from a trace: every executed `JUMPI` contributes a
    /// distance for its untaken edge.
    pub fn from_trace(trace: &ExecutionTrace) -> DistanceMap {
        let mut distances: HashMap<BranchEdge, f64> = HashMap::new();
        for branch in &trace.branches {
            let edge = branch.untaken_edge();
            let d = normalize(branch.flip_distance());
            distances
                .entry(edge)
                .and_modify(|cur| {
                    if d < *cur {
                        *cur = d;
                    }
                })
                .or_insert(d);
        }
        DistanceMap { distances }
    }

    /// Distance to a specific uncovered edge; `None` when the branch was never
    /// reached by this execution.
    pub fn to_edge(&self, edge: &BranchEdge) -> Option<f64> {
        self.distances.get(edge).copied()
    }

    /// Minimum distance to any of the given uncovered edges. Unreached edges
    /// contribute nothing; if none are reached the result is `None`.
    pub fn min_distance<'a>(&self, edges: impl IntoIterator<Item = &'a BranchEdge>) -> Option<f64> {
        edges
            .into_iter()
            .filter_map(|e| self.to_edge(e))
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Number of edges with distance information.
    pub fn len(&self) -> usize {
        self.distances.len()
    }

    /// True if no branch was reached.
    pub fn is_empty(&self) -> bool {
        self.distances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_evm::{Address, BranchRecord, CmpKind, Comparison, Taint};

    fn record(pc: usize, taken: bool, lhs: u64, rhs: u64) -> BranchRecord {
        BranchRecord {
            pc,
            dest: pc + 100,
            taken,
            cond_taint: Taint::empty(),
            comparison: Some(Comparison {
                pc: pc.saturating_sub(1),
                kind: CmpKind::Eq,
                lhs: U256::from_u64(lhs),
                rhs: U256::from_u64(rhs),
                taint: Taint::empty(),
            }),
            depth: 0,
            code_address: Address::from_low_u64(1),
        }
    }

    #[test]
    fn normalization_is_monotone_and_bounded() {
        assert_eq!(normalize(U256::ZERO), 0.0);
        let near = normalize(U256::from_u64(1));
        let far = normalize(U256::from_u64(1_000_000));
        assert!(near < far);
        assert!(far < 1.0);
        assert!(normalize(U256::MAX) <= 1.0);
    }

    #[test]
    fn closer_comparison_produces_smaller_distance() {
        let mut trace = ExecutionTrace::new();
        trace.branches.push(record(10, false, 100, 88));
        let close = DistanceMap::from_trace(&trace);

        let mut trace2 = ExecutionTrace::new();
        trace2.branches.push(record(10, false, 1000, 88));
        let far = DistanceMap::from_trace(&trace2);

        let edge = trace.branches[0].untaken_edge();
        assert!(close.to_edge(&edge).unwrap() < far.to_edge(&edge).unwrap());
    }

    #[test]
    fn keeps_minimum_distance_across_repeated_visits() {
        let mut trace = ExecutionTrace::new();
        trace.branches.push(record(10, false, 1000, 88));
        trace.branches.push(record(10, false, 90, 88));
        let map = DistanceMap::from_trace(&trace);
        let edge = trace.branches[0].untaken_edge();
        assert_eq!(map.len(), 1);
        assert!(map.to_edge(&edge).unwrap() < normalize(U256::from_u64(912)) + 1e-12);
        assert!((map.to_edge(&edge).unwrap() - normalize(U256::from_u64(2))).abs() < 1e-12);
    }

    #[test]
    fn unreached_branches_have_no_distance() {
        let trace = ExecutionTrace::new();
        let map = DistanceMap::from_trace(&trace);
        assert!(map.is_empty());
        let edge = BranchEdge {
            code_address: Address::from_low_u64(1),
            pc: 99,
            taken: true,
        };
        assert_eq!(map.to_edge(&edge), None);
        assert_eq!(map.min_distance([&edge]), None);
    }

    #[test]
    fn min_distance_over_multiple_targets() {
        let mut trace = ExecutionTrace::new();
        trace.branches.push(record(10, false, 90, 88));
        trace.branches.push(record(20, true, 500, 88));
        let map = DistanceMap::from_trace(&trace);
        let e1 = trace.branches[0].untaken_edge();
        let e2 = trace.branches[1].untaken_edge();
        let min = map.min_distance([&e1, &e2]).unwrap();
        assert!((min - normalize(U256::from_u64(2))).abs() < 1e-12);
    }
}
