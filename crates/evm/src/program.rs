//! Pre-decoded instruction streams.
//!
//! The fuzzer executes the same runtime bytecode tens of thousands of times
//! per second. Decoding a byte at a time on every execution — opcode match,
//! `PUSH` immediate materialisation, `JUMPDEST` scan per call frame — is pure
//! overhead after the first run, so [`DecodedProgram`] lowers a code blob
//! once into a dense instruction stream:
//!
//! * one [`DecodedInstr`] per instruction with the opcode tag and the
//!   `PUSH` immediate already materialised as a [`U256`],
//! * a pc → instruction-index table so `JUMP`/`JUMPI` destinations resolve
//!   in O(1) without scanning,
//! * a `JUMPDEST` validity bitmap (a destination is valid only when the
//!   `0x5b` byte is an instruction start, not push data).
//!
//! The sequential successor of an instruction is pre-resolved too: it is
//! simply the next index in the stream, so the dispatch loop never computes
//! `pc + 1 + immediate_size` again.
//!
//! [`BlockProgram`] lowers one step further: the decoded stream is split
//! into basic blocks (leaders at entry, at every `JUMPDEST`, and at the
//! fall-through of every block-ending instruction) and each block carries
//! its pre-summed static gas cost and stack envelope, so the dispatch loop
//! charges gas and bounds-checks the stack once per block instead of per
//! instruction. Within a block, common compiler idioms are fused into
//! superinstructions ([`Fused`]) with dedicated dispatch arms.
//!
//! [`ProgramCache`] maps code blobs (by `Arc` pointer identity — the world
//! state shares code blobs across snapshots, so the pointer is stable) to
//! their decoded *and* block-lowered programs. The fuzzing harness decodes
//! the contract under test once at build time and shares the cache
//! `Arc`-style across worker harness clones, exactly like the dense edge
//! index.

use crate::gas::static_gas;
use crate::opcode::Opcode;
use crate::threaded::{select_handler, UnitHandler};
use crate::trace::OpcodeSet;
use crate::u256::U256;
use std::sync::Arc;

/// One pre-decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodedInstr {
    /// The opcode.
    pub op: Opcode,
    /// Byte offset of the opcode in the original code (what traces record).
    pub pc: u32,
    /// Pre-materialised immediate for `PUSH*` (zero for everything else;
    /// truncated pushes at the end of the code zero-pad exactly like the
    /// byte-at-a-time decoder).
    pub imm: U256,
}

/// A code blob lowered into a dense instruction stream with O(1) jump
/// resolution.
///
/// ```
/// use mufuzz_evm::{DecodedProgram, Opcode};
///
/// // PUSH1 0x03, JUMP, INVALID, JUMPDEST, STOP
/// let program = DecodedProgram::decode(&[0x60, 0x03, 0x56, 0x5b, 0x00]);
/// assert_eq!(program.instructions().len(), 4);
/// assert_eq!(program.instructions()[0].op, Opcode::Push(1));
/// // pc 3 is a valid JUMPDEST and resolves to instruction index 2.
/// assert_eq!(program.jump_cursor(3), Some(2));
/// // pc 1 is push data, not a jump destination.
/// assert_eq!(program.jump_cursor(1), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DecodedProgram {
    code_len: usize,
    instrs: Vec<DecodedInstr>,
    /// pc → index into `instrs` (`u32::MAX` for bytes inside push data).
    pc_to_instr: Vec<u32>,
    /// Valid `JUMPDEST` positions, one bit per code byte.
    jumpdests: Vec<u64>,
}

impl DecodedProgram {
    /// Decode a code blob. One linear pass; every later execution reuses the
    /// result.
    pub fn decode(code: &[u8]) -> DecodedProgram {
        let mut instrs = Vec::with_capacity(code.len());
        let mut pc_to_instr = vec![u32::MAX; code.len()];
        let mut jumpdests = vec![0u64; code.len().div_ceil(64)];
        let mut pc = 0usize;
        while pc < code.len() {
            let op = Opcode::from_byte(code[pc]);
            let imm_len = op.immediate_size();
            let imm = if imm_len > 0 {
                let end = (pc + 1 + imm_len).min(code.len());
                U256::from_be_slice(&code[pc + 1..end])
            } else {
                U256::ZERO
            };
            pc_to_instr[pc] = instrs.len() as u32;
            if op == Opcode::JumpDest {
                jumpdests[pc / 64] |= 1 << (pc % 64);
            }
            instrs.push(DecodedInstr {
                op,
                pc: pc as u32,
                imm,
            });
            pc += 1 + imm_len;
        }
        DecodedProgram {
            code_len: code.len(),
            instrs,
            pc_to_instr,
            jumpdests,
        }
    }

    /// Byte length of the original code (`CODESIZE`).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// The instruction stream, in code order.
    pub fn instructions(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Resolve a jump destination: the instruction index of `dest` when it
    /// is a valid `JUMPDEST` (an instruction start carrying `0x5b`), `None`
    /// otherwise.
    #[inline]
    pub fn jump_cursor(&self, dest: usize) -> Option<usize> {
        if dest >= self.code_len || (self.jumpdests[dest / 64] >> (dest % 64)) & 1 == 0 {
            return None;
        }
        Some(self.pc_to_instr[dest] as usize)
    }
}

/// True for opcodes that end a basic block.
///
/// Control-flow terminators end a block by definition. The call family,
/// `CREATE` and `CREATE2` also end theirs: they forward a fraction of the
/// *exact* counter into another frame, so the block's accounting must be
/// fully settled before them. `Unknown` faults while gas remains; keeping it
/// block-final keeps the reported `gas_left` exact without a residual.
///
/// Every other opcode — including the dynamically billed memory / `SHA3` /
/// `EXP` ops, the EIP-2929 warm/cold storage and account accesses and the
/// gas-observing `GAS` — stays inside its block: its unit carries a
/// [`BlockUnit::tail`] residual that the dispatch loop un-charges around the
/// arm, so the arm observes, bills and faults against the exact
/// per-instruction gas value even though the whole block was pre-charged.
fn ends_block(op: Opcode) -> bool {
    use Opcode::*;
    op.is_terminator()
        || matches!(
            op,
            Call | CallCode | DelegateCall | StaticCall | Create | Create2 | Unknown(_)
        )
}

/// Ops whose dispatch arm must see the exact per-instruction gas counter
/// mid-block: dynamic billing (memory expansion, `EXP`, `SHA3`, the copy
/// family), EIP-2929 warm/cold surcharges (`SLOAD`/`SSTORE`/`BALANCE`/
/// `EXTCODE*`), gas observation (`GAS`), or faults that report `gas_left`
/// (the memory ops again). Their units carry a non-zero [`BlockUnit::tail`].
fn needs_exact_gas(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Exp | Sha3
            | CallDataCopy
            | MLoad
            | MStore
            | MStore8
            | Gas
            | SLoad
            | SStore
            | Balance
            | CodeCopy
            | ReturnDataCopy
            | ExtCodeSize
            | ExtCodeCopy
            | ExtCodeHash
    )
}

/// Binops eligible for [`Fused::PushPushBinop`]: pure two-operand stack ops
/// whose dispatch arm touches nothing but the stack and the comparison /
/// arithmetic trace. `EXP` is excluded (dynamic gas, ends its block).
fn fusable_binop(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Add | Sub | Mul | Div | Sdiv | Mod | Smod | Lt | Gt | Slt | Sgt | Eq | And | Or | Xor
    )
}

/// Static execution envelope of one basic block, precomputed at lowering
/// time so the dispatch loop validates it once at block entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    /// Sum of the static gas costs of every instruction in the block.
    pub static_gas: u64,
    /// Stack items the block consumes below the entry height (the dispatch
    /// loop underflows somewhere in the block iff fewer are available).
    pub stack_needed: u32,
    /// Peak stack growth above the entry height (the dispatch loop
    /// overflows somewhere in the block iff `entry + max_growth > 1024`).
    pub max_growth: u32,
    /// Net stack-height change across the block.
    pub stack_delta: i32,
    /// First instruction of the block (index into the decoded stream).
    pub instr_start: u32,
    /// One past the last instruction of the block.
    pub instr_end: u32,
    /// One past the last dispatch unit of the block (the block's units are
    /// `[leader unit .. unit_end)`; the leader unit's own index is recorded
    /// on the unit itself). Lets the direct-threaded driver run a block's
    /// units in a tight inner loop with the per-unit checks hoisted out.
    pub unit_end: u32,
}

impl BlockInfo {
    /// Fold the envelope over `instrs` (the block's slice of the decoded
    /// stream starting at index `start`). This instruction-by-instruction
    /// fold is exact: every dispatch arm pops its inputs before pushing its
    /// outputs, so the intra-instruction stack peak equals the
    /// post-instruction height.
    fn fold(instrs: &[DecodedInstr], start: usize) -> BlockInfo {
        let mut static_sum = 0u64;
        let (mut height, mut needed, mut peak) = (0i64, 0i64, 0i64);
        for instr in instrs {
            static_sum += static_gas(instr.op);
            let ins = instr.op.stack_inputs() as i64;
            let outs = instr.op.stack_outputs() as i64;
            needed = needed.max(ins - height);
            height += outs - ins;
            peak = peak.max(height);
        }
        BlockInfo {
            static_gas: static_sum,
            stack_needed: needed.max(0) as u32,
            max_growth: peak as u32,
            stack_delta: height as i32,
            instr_start: start as u32,
            instr_end: (start + instrs.len()) as u32,
            unit_end: 0, // filled once the block's units are fused
        }
    }
}

/// A superinstruction tag: which fused idiom a [`BlockUnit`] stands for.
///
/// The payload is deliberately slim — immediates and constituent opcodes are
/// read back from the unit's slice of the decoded stream — except for
/// pre-resolved jump targets, which are *unit* cursors (`u32::MAX` marks an
/// invalid destination that faults at runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fused {
    /// Not a superinstruction: dispatch the unit's single opcode generically.
    None,
    /// `PUSH a; PUSH b; <binop>` — both operands known statically.
    PushPushBinop,
    /// `PUSH dest; JUMP` — unconditional jump with a static destination.
    PushJump {
        /// Unit cursor of the destination block leader.
        target: u32,
    },
    /// `PUSH dest; JUMPI` — conditional jump with a static destination.
    PushJumpI {
        /// Unit cursor of the destination block leader.
        target: u32,
    },
    /// `ISZERO; PUSH dest; JUMPI` — the dominant compiled branch idiom.
    IsZeroPushJumpI {
        /// Unit cursor of the destination block leader.
        target: u32,
    },
    /// `DUPn; SWAPm` — adjacent stack-shuffle pair.
    DupSwap,
    /// `PUSH a; PUSH b` — two adjacent immediates, one dispatch.
    PushPush,
    /// `PUSH offset; MLOAD` — memory read at a static offset.
    PushMLoad,
    /// `PUSH offset; MSTORE` — memory write at a static offset.
    PushMStore,
    /// `PUSH offset; CALLDATALOAD` — calldata word at a static offset.
    PushCallDataLoad,
    /// `PUSH len; PUSH offset; SHA3` — static-span keccak (the compiler's
    /// mapping-slot idiom).
    PushPushSha3,
    /// `PUSH b; PUSH offset; MLOAD; binop` — "constant ⊕ local", the
    /// compiler's dominant expression step for memory-resident locals.
    PushPushMLoadBinop,
    /// `PUSH offset; MLOAD; PUSH a; binop` — "local ⊕ constant", the
    /// mirrored operand order.
    PushMLoadPushBinop,
    /// `PUSH offset; MLOAD; binop` — fold a local into the running operand.
    PushMLoadBinop,
    /// `PUSH a; binop; PUSH offset; MSTORE` — fold a constant into the
    /// running operand and store the statement result to a local slot.
    PushBinopPushMStore,
    /// `binop; PUSH offset; MSTORE` — compute and store a statement result
    /// to a static local slot.
    BinopPushMStore,
    /// `PUSH a; binop` — fold a constant into the running operand.
    PushBinop,
    /// `PUSH c2; PUSH c1; PUSH off; MLOAD; binop1; binop2; PUSH off';
    /// MSTORE` — a whole `local = (local ⊕ c1) ⊕ c2` statement: load,
    /// fold two constants, store, with no stack traffic at all.
    LocalExprStore,
    /// `PUSH off_b; MLOAD; PUSH off_a; MLOAD; binop; PUSH off'; MSTORE` — a
    /// whole `local = local_a ⊕ local_b` statement: load both operands,
    /// fold, store, with no stack traffic at all.
    LocalPairStore,
    /// `PUSH slot; SLOAD` — storage read at a static slot (the compiler's
    /// scalar-storage-variable read idiom).
    PushSLoad,
    /// `PUSH slot; SSTORE` — storage write at a static slot.
    PushSStore,
    /// `PUSH c; PUSH slot; SLOAD; binop; PUSH slot; SSTORE` — a whole
    /// `storage_var = storage_var ⊕ c` read-modify-write statement: load the
    /// slot, fold the constant, store back, with no stack traffic at all.
    StorageExprStore,
    /// `PUSH o1; MSTORE; PUSH slot; PUSH o2; MSTORE; PUSH len; PUSH off;
    /// SHA3` — the compiler's mapping-slot addressing tail: stage the key
    /// (already on the stack) and the mapping's slot constant in memory,
    /// hash the window. Contains several dynamic bills, so the arm replays
    /// per-constituent gas exactly from the unit's `head`.
    MapSlotSha3,
    /// [`Fused::MapSlotSha3`] followed by `SLOAD` — a whole mapping read.
    MapSlotSLoad,
    /// [`Fused::MapSlotSha3`] followed by `SSTORE` — a whole mapping write.
    MapSlotSStore,
}

/// One dispatch unit of a [`BlockProgram`]: either a single instruction
/// (`fused == Fused::None`) or a superinstruction covering several.
#[derive(Clone, Copy, Debug)]
pub struct BlockUnit {
    /// Opcode of the unit's *last* constituent (the dispatch opcode for
    /// plain units; fused units dispatch on `fused` instead).
    pub op: Opcode,
    /// Byte offset of the unit's *first* constituent.
    pub pc: u32,
    /// `PUSH` immediate of the first constituent (zero otherwise).
    pub imm: U256,
    /// Block index when this unit starts a basic block, `u32::MAX` otherwise.
    pub leader: u32,
    /// First constituent instruction (index into the decoded stream).
    pub instr_start: u32,
    /// Number of constituent instructions.
    pub instr_count: u32,
    /// Static gas of the block's instructions *after* this unit's last
    /// gas-exact constituent — already pre-charged at block entry. Non-zero
    /// only for units containing an op whose arm needs the exact
    /// per-instruction counter (see `needs_exact_gas`): the dispatch loop
    /// un-charges this residual before that op bills and re-charges it
    /// after the arm, deopting if a dynamic bill ate into it.
    pub tail: u64,
    /// Static gas of the block's instructions from this unit (inclusive) to
    /// the block's end — already pre-charged at block entry. A fused arm
    /// that must bail *before* touching any state (instruction-cap hit, or a
    /// pre-validation failure) re-charges this and deopts to `instr_start`,
    /// handing the per-instruction tier an exact counter to replay from.
    /// Arms with several dynamic bills (the `MapSlot*` family) also re-charge
    /// it up front and replay per-constituent billing exactly.
    pub head: u64,
    /// Superinstruction tag.
    pub fused: Fused,
    /// Opcode-presence mask of every constituent, precomputed so fused
    /// dispatch arms bulk-OR the trace bitset once per unit (see
    /// [`crate::trace::ExecutionTrace::record_unit`]).
    pub mask: OpcodeSet,
    /// Pre-resolved dispatch handler for the direct-threaded tier, selected
    /// once at lowering time from `(fused, op)` so the hot loop is an
    /// indirect call instead of a two-level `match`.
    pub(crate) handler: UnitHandler,
}

/// A [`DecodedProgram`] lowered to basic blocks with fused idioms.
///
/// ```
/// use mufuzz_evm::{BlockProgram, DecodedProgram, Fused};
/// use std::sync::Arc;
///
/// // PUSH1 0x04, JUMP, INVALID, JUMPDEST, STOP
/// let base = Arc::new(DecodedProgram::decode(&[0x60, 0x04, 0x56, 0xfe, 0x5b, 0x00]));
/// let program = BlockProgram::lower(base);
/// // Three blocks: [PUSH JUMP], [INVALID], [JUMPDEST STOP].
/// assert_eq!(program.blocks().len(), 3);
/// // The PUSH+JUMP pair fuses with its target pre-resolved to a unit cursor.
/// assert!(matches!(program.units()[0].fused, Fused::PushJump { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct BlockProgram {
    base: Arc<DecodedProgram>,
    blocks: Vec<BlockInfo>,
    units: Vec<BlockUnit>,
    /// Instruction index → unit index (every instruction belongs to exactly
    /// one unit).
    instr_to_unit: Vec<u32>,
}

impl BlockProgram {
    /// Lower a decoded program: split at block leaders (entry, `JUMPDEST`s,
    /// fall-throughs of block-ending instructions), fold the per-block
    /// static-gas/stack envelope, and fuse idioms into superinstructions.
    pub fn lower(base: Arc<DecodedProgram>) -> BlockProgram {
        let instrs = base.instructions();
        let n = instrs.len();

        // 1. Mark leaders. Jump targets are always `JUMPDEST`s, so every
        //    reachable control transfer lands on a leader by construction.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, instr) in instrs.iter().enumerate() {
            if instr.op == Opcode::JumpDest {
                leader[i] = true;
            }
            if ends_block(instr.op) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        // 2. Fold the envelope of each [leader, next leader) range.
        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let mut blocks = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n);
            blocks.push(BlockInfo::fold(&instrs[start..end], start));
        }

        // 3. Fuse within each block. Patterns never straddle a block
        //    boundary, so a jump can never land mid-superinstruction.
        let mut units = Vec::with_capacity(n);
        let mut instr_to_unit = vec![u32::MAX; n];
        let mut unit_ends = Vec::with_capacity(blocks.len());
        for (bi, block) in blocks.iter().enumerate() {
            let (start, end) = (block.instr_start as usize, block.instr_end as usize);
            let mut i = start;
            // Static gas of the block's instructions at and after `i`; after
            // subtracting a unit's constituents it is that unit's tail.
            let mut remaining = block.static_gas;
            while i < end {
                let (count, fused) = Self::match_fusion(&instrs[i..end], &base);
                let unit_idx = units.len() as u32;
                for slot in &mut instr_to_unit[i..i + count] {
                    *slot = unit_idx;
                }
                // The tail residual is anchored at the unit's *last*
                // gas-exact constituent: pure constituents after it
                // contribute their statics back. A pattern may contain an
                // *earlier* gas-exact constituent only if its arm either
                // pre-validates that op and deopts before mutating anything
                // (`LocalExprStore`'s MLOAD) or replays per-constituent
                // billing exactly from the unit's `head` (the `MapSlot*`
                // family).
                let head = remaining;
                let mut tail_extra = 0u64;
                let mut has_exact = false;
                let mut mask = OpcodeSet::default();
                for instr in &instrs[i..i + count] {
                    remaining -= static_gas(instr.op);
                    mask.insert(instr.op);
                    if needs_exact_gas(instr.op) {
                        has_exact = true;
                        tail_extra = 0;
                    } else if has_exact {
                        tail_extra += static_gas(instr.op);
                    }
                }
                let op = instrs[i + count - 1].op;
                units.push(BlockUnit {
                    op,
                    pc: instrs[i].pc,
                    imm: instrs[i].imm,
                    leader: if i == start { bi as u32 } else { u32::MAX },
                    instr_start: i as u32,
                    instr_count: count as u32,
                    tail: if has_exact { remaining + tail_extra } else { 0 },
                    head,
                    fused,
                    mask,
                    handler: select_handler(fused, &instrs[i..i + count]),
                });
                i += count;
            }
            unit_ends.push(units.len() as u32);
        }
        for (block, unit_end) in blocks.iter_mut().zip(unit_ends) {
            block.unit_end = unit_end;
        }

        // 4. Remap fused jump targets from instruction cursors to unit
        //    cursors (destinations are `JUMPDEST` leaders, so they always
        //    start a unit).
        for unit in &mut units {
            match &mut unit.fused {
                Fused::PushJump { target }
                | Fused::PushJumpI { target }
                | Fused::IsZeroPushJumpI { target }
                    if *target != u32::MAX =>
                {
                    *target = instr_to_unit[*target as usize];
                }
                _ => {}
            }
        }

        BlockProgram {
            base,
            blocks,
            units,
            instr_to_unit,
        }
    }

    /// Match the longest fused idiom at the head of `window` (one block's
    /// remaining instructions). Returns the constituent count and the tag;
    /// jump targets are *instruction* cursors here, remapped to unit cursors
    /// by the caller once all units exist.
    fn match_fusion(window: &[DecodedInstr], base: &DecodedProgram) -> (usize, Fused) {
        use Opcode::*;
        let resolve = |imm: U256| -> u32 {
            imm.to_usize()
                .and_then(|dest| base.jump_cursor(dest))
                .map(|i| i as u32)
                .unwrap_or(u32::MAX)
        };
        match window {
            [a, b, c, ..] if a.op == IsZero && matches!(b.op, Push(_)) && c.op == JumpI => (
                3,
                Fused::IsZeroPushJumpI {
                    target: resolve(b.imm),
                },
            ),
            [a, b, c, d, e, f, g, h, i, ..]
                if matches!(a.op, Push(_))
                    && b.op == MStore
                    && matches!(c.op, Push(_))
                    && matches!(d.op, Push(_))
                    && e.op == MStore
                    && matches!(f.op, Push(_))
                    && matches!(g.op, Push(_))
                    && h.op == Sha3
                    && matches!(i.op, SLoad | SStore) =>
            {
                (
                    9,
                    if i.op == SLoad {
                        Fused::MapSlotSLoad
                    } else {
                        Fused::MapSlotSStore
                    },
                )
            }
            [a, b, c, d, e, f, g, h, ..]
                if matches!(a.op, Push(_))
                    && b.op == MStore
                    && matches!(c.op, Push(_))
                    && matches!(d.op, Push(_))
                    && e.op == MStore
                    && matches!(f.op, Push(_))
                    && matches!(g.op, Push(_))
                    && h.op == Sha3 =>
            {
                (8, Fused::MapSlotSha3)
            }
            [a, b, c, d, e, f, g, h, ..]
                if matches!(a.op, Push(_))
                    && matches!(b.op, Push(_))
                    && matches!(c.op, Push(_))
                    && d.op == MLoad
                    && fusable_binop(e.op)
                    && fusable_binop(f.op)
                    && matches!(g.op, Push(_))
                    && h.op == MStore =>
            {
                (8, Fused::LocalExprStore)
            }
            [a, b, c, d, e, f, g, ..]
                if matches!(a.op, Push(_))
                    && b.op == MLoad
                    && matches!(c.op, Push(_))
                    && d.op == MLoad
                    && fusable_binop(e.op)
                    && matches!(f.op, Push(_))
                    && g.op == MStore =>
            {
                (7, Fused::LocalPairStore)
            }
            [a, b, c, d, e, f, ..]
                if matches!(a.op, Push(_))
                    && matches!(b.op, Push(_))
                    && c.op == SLoad
                    && fusable_binop(d.op)
                    && matches!(e.op, Push(_))
                    && f.op == SStore =>
            {
                (6, Fused::StorageExprStore)
            }
            [a, b, c, d, ..]
                if matches!(a.op, Push(_))
                    && matches!(b.op, Push(_))
                    && c.op == MLoad
                    && fusable_binop(d.op) =>
            {
                (4, Fused::PushPushMLoadBinop)
            }
            [a, b, c, d, ..]
                if matches!(a.op, Push(_))
                    && b.op == MLoad
                    && matches!(c.op, Push(_))
                    && fusable_binop(d.op) =>
            {
                (4, Fused::PushMLoadPushBinop)
            }
            [a, b, c, d, ..]
                if matches!(a.op, Push(_))
                    && fusable_binop(b.op)
                    && matches!(c.op, Push(_))
                    && d.op == MStore =>
            {
                (4, Fused::PushBinopPushMStore)
            }
            [a, b, c, ..]
                if matches!(a.op, Push(_)) && matches!(b.op, Push(_)) && fusable_binop(c.op) =>
            {
                (3, Fused::PushPushBinop)
            }
            [a, b, c, ..] if matches!(a.op, Push(_)) && matches!(b.op, Push(_)) && c.op == Sha3 => {
                (3, Fused::PushPushSha3)
            }
            [a, b, c, ..] if matches!(a.op, Push(_)) && b.op == MLoad && fusable_binop(c.op) => {
                (3, Fused::PushMLoadBinop)
            }
            [a, b, c, ..] if fusable_binop(a.op) && matches!(b.op, Push(_)) && c.op == MStore => {
                (3, Fused::BinopPushMStore)
            }
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == Jump => (
                2,
                Fused::PushJump {
                    target: resolve(a.imm),
                },
            ),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == JumpI => (
                2,
                Fused::PushJumpI {
                    target: resolve(a.imm),
                },
            ),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == MLoad => (2, Fused::PushMLoad),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == MStore => (2, Fused::PushMStore),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == SLoad => (2, Fused::PushSLoad),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == SStore => (2, Fused::PushSStore),
            [a, b, ..] if matches!(a.op, Push(_)) && b.op == CallDataLoad => {
                (2, Fused::PushCallDataLoad)
            }
            [a, b, ..] if matches!(a.op, Push(_)) && fusable_binop(b.op) => (2, Fused::PushBinop),
            // Catch-all immediate pair — unless the *second* push feeds one
            // of the patterns above, which pair tighter (pre-resolved jump
            // target, no offset round trip through the stack).
            [a, b, rest @ ..]
                if matches!(a.op, Push(_))
                    && matches!(b.op, Push(_))
                    && !matches!(
                        rest.first().map(|i| i.op),
                        Some(Jump | JumpI | MLoad | MStore | CallDataLoad | SLoad | SStore)
                    ) =>
            {
                (2, Fused::PushPush)
            }
            [a, b, ..] if matches!(a.op, Dup(_)) && matches!(b.op, Swap(_)) => (2, Fused::DupSwap),
            _ => (1, Fused::None),
        }
    }

    /// The decoded program this lowering was built from.
    pub fn base(&self) -> &Arc<DecodedProgram> {
        &self.base
    }

    /// The basic blocks, in instruction order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// The dispatch units, in instruction order.
    pub fn units(&self) -> &[BlockUnit] {
        &self.units
    }

    /// Resolve a jump destination to a *unit* cursor (the block-program
    /// analogue of [`DecodedProgram::jump_cursor`]).
    #[inline]
    pub fn jump_unit(&self, dest: usize) -> Option<usize> {
        self.base
            .jump_cursor(dest)
            .map(|i| self.instr_to_unit[i] as usize)
    }
}

/// Decoded and block-lowered programs keyed by code-blob identity.
///
/// Lookup is by `Arc` pointer equality: the world state hands out clones of
/// the same `Arc<Vec<u8>>` for an account's code across snapshots, so the
/// pointer is a stable identity for "the same deployed code". The cache is
/// built once by the harness and then only read (it is shared across worker
/// threads behind an `Arc`), so there is no interior mutability.
///
/// Pointer identity alone is a footgun: an entry pins its blob alive, but a
/// cache that outlives its blob's other owners — or an entry constructed
/// against a blob that was dropped and reallocated at the same address —
/// would silently serve a stale program for different bytes. Every lookup
/// therefore also checks a `BlobFingerprint` captured at insert time; a
/// mismatch is treated as a miss, and the caller falls back to decoding on
/// the fly.
#[derive(Clone, Debug, Default)]
pub struct ProgramCache {
    entries: Vec<CacheEntry>,
}

/// Identity fingerprint of a code blob, captured when it is inserted into
/// the cache and re-checked on every lookup. Length plus the packed first
/// and last eight bytes is enough to reject any aliased reallocation the
/// fuzzer could plausibly produce at a cost of a few loads per lookup; debug
/// builds additionally verify a full FNV-1a content hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct BlobFingerprint {
    len: usize,
    head: u64,
    tail: u64,
    #[cfg(debug_assertions)]
    content: u64,
}

impl BlobFingerprint {
    fn of(code: &[u8]) -> BlobFingerprint {
        let pack = |bytes: &[u8]| bytes.iter().fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
        BlobFingerprint {
            len: code.len(),
            head: pack(&code[..code.len().min(8)]),
            tail: pack(&code[code.len().saturating_sub(8)..]),
            #[cfg(debug_assertions)]
            content: fnv1a(code),
        }
    }
}

/// 64-bit FNV-1a over a byte slice (debug-build content check).
#[cfg(debug_assertions)]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One cached code blob with its program for each execution tier.
#[derive(Clone, Debug)]
struct CacheEntry {
    code: Arc<Vec<u8>>,
    fingerprint: BlobFingerprint,
    decoded: Arc<DecodedProgram>,
    lowered: Arc<BlockProgram>,
}

impl CacheEntry {
    /// Pointer identity plus the insert-time fingerprint. A pointer match
    /// with a fingerprint mismatch means the blob behind the address is not
    /// the one that was decoded — report a miss rather than a stale program.
    #[inline]
    fn matches(&self, code: &Arc<Vec<u8>>) -> bool {
        Arc::ptr_eq(&self.code, code) && self.fingerprint == BlobFingerprint::of(code)
    }
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Register the decoded program of a code blob. The block lowering is
    /// derived here, once, so every entry serves both execution tiers.
    pub fn insert(&mut self, code: Arc<Vec<u8>>, program: Arc<DecodedProgram>) {
        let lowered = Arc::new(BlockProgram::lower(Arc::clone(&program)));
        let fingerprint = BlobFingerprint::of(&code);
        self.entries.push(CacheEntry {
            code,
            fingerprint,
            decoded: program,
            lowered,
        });
    }

    /// Look up the decoded program of a code blob by pointer identity. The
    /// handful of entries (one per deployed contract under test) makes a
    /// linear scan faster than hashing.
    #[inline]
    pub fn get(&self, code: &Arc<Vec<u8>>) -> Option<&Arc<DecodedProgram>> {
        self.entries
            .iter()
            .find(|e| e.matches(code))
            .map(|e| &e.decoded)
    }

    /// Look up the block-lowered program of a code blob by pointer identity.
    #[inline]
    pub fn get_block(&self, code: &Arc<Vec<u8>>) -> Option<&Arc<BlockProgram>> {
        self.entries
            .iter()
            .find(|e| e.matches(code))
            .map(|e| &e.lowered)
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no program is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::disassemble;

    #[test]
    fn decode_matches_disassembler() {
        // PUSH1 2, PUSH2 0x0304, ADD, JUMPDEST, PUSH32 (truncated), implicit end
        let mut code = vec![0x60, 0x02, 0x61, 0x03, 0x04, 0x01, 0x5b];
        code.push(0x7f);
        code.extend_from_slice(&[0xaa, 0xbb]);
        let program = DecodedProgram::decode(&code);
        let instrs = disassemble(&code);
        assert_eq!(program.instructions().len(), instrs.len());
        for (decoded, reference) in program.instructions().iter().zip(&instrs) {
            assert_eq!(decoded.op, reference.opcode);
            assert_eq!(decoded.pc as usize, reference.pc);
            assert_eq!(decoded.imm, U256::from_be_slice(&reference.immediate));
        }
        assert_eq!(program.code_len(), code.len());
    }

    #[test]
    fn jumpdest_inside_push_data_is_invalid() {
        // PUSH1 0x5b: the 0x5b byte at pc 1 is data, not a JUMPDEST.
        let program = DecodedProgram::decode(&[0x60, 0x5b, 0x5b, 0x00]);
        assert_eq!(program.jump_cursor(1), None);
        assert_eq!(program.jump_cursor(2), Some(1));
        assert_eq!(program.jump_cursor(3), None); // STOP, not JUMPDEST
        assert_eq!(program.jump_cursor(400), None); // out of range
    }

    #[test]
    fn empty_code_decodes_to_empty_program() {
        let program = DecodedProgram::decode(&[]);
        assert!(program.instructions().is_empty());
        assert_eq!(program.code_len(), 0);
        assert_eq!(program.jump_cursor(0), None);
    }

    #[test]
    fn cache_hits_by_pointer_identity_only() {
        let code_a = Arc::new(vec![0x60, 0x01, 0x00]);
        let code_b = Arc::new(vec![0x60, 0x01, 0x00]); // equal bytes, new blob
        let mut cache = ProgramCache::new();
        assert!(cache.is_empty());
        cache.insert(
            Arc::clone(&code_a),
            Arc::new(DecodedProgram::decode(&code_a)),
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&code_a).is_some());
        assert!(cache.get(&Arc::clone(&code_a)).is_some());
        assert!(cache.get(&code_b).is_none());
    }

    #[test]
    fn poisoned_entry_is_a_miss_not_a_stale_hit() {
        // Simulate the aliasing hazard directly: an entry whose pointer
        // matches the probe but whose insert-time fingerprint belongs to
        // different bytes (a blob that was dropped and reallocated at the
        // same address). The lookup must treat it as a miss.
        let original = vec![0x60, 0x01, 0x00];
        let reallocated = Arc::new(vec![0x60, 0x02, 0x00]);
        let cache = ProgramCache {
            entries: vec![CacheEntry {
                code: Arc::clone(&reallocated),
                fingerprint: BlobFingerprint::of(&original),
                decoded: Arc::new(DecodedProgram::decode(&original)),
                lowered: Arc::new(BlockProgram::lower(Arc::new(DecodedProgram::decode(
                    &original,
                )))),
            }],
        };
        assert!(cache.get(&reallocated).is_none());
        assert!(cache.get_block(&reallocated).is_none());
    }

    #[test]
    fn dropped_and_recreated_blobs_never_serve_stale_programs() {
        // Churn blobs through drop/recreate cycles the way a long campaign
        // redeploys contracts: the allocator is free to reuse addresses, and
        // no probe may ever come back with a program decoded from different
        // bytes.
        for round in 0..64u8 {
            let code = Arc::new(vec![0x60, round, 0x00]);
            let mut cache = ProgramCache::new();
            cache.insert(Arc::clone(&code), Arc::new(DecodedProgram::decode(&code)));
            let hit = cache.get(&code).expect("own blob must hit");
            assert_eq!(hit.instructions()[0].imm, U256::from_u64(u64::from(round)));
            drop(code);
            // The entry's own Arc keeps the blob pinned, so a fresh
            // allocation with different bytes can never alias a live entry.
            let probe = Arc::new(vec![0x60, round.wrapping_add(1), 0x00]);
            assert!(cache.get(&probe).is_none());
            assert!(cache.get_block(&probe).is_none());
        }
    }
}
