//! Transaction and block environment types.

use crate::trace::{ExecutionTrace, HaltReason};
use crate::types::Address;
use crate::u256::U256;

/// The block-level environment visible to contracts via `TIMESTAMP`,
/// `NUMBER`, `COINBASE`, etc. The fuzzer mutates the timestamp/number fields
/// to exercise block-dependency branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEnv {
    /// Block number.
    pub number: u64,
    /// Block timestamp (seconds).
    pub timestamp: u64,
    /// Miner / coinbase address.
    pub coinbase: Address,
    /// Block gas limit.
    pub gas_limit: u64,
    /// Difficulty value (pre-merge semantics, exposed via `DIFFICULTY`).
    pub difficulty: U256,
    /// Chain identifier (EIP-1344, exposed via `CHAINID`).
    pub chain_id: u64,
    /// Base fee per gas (EIP-3198, exposed via `BASEFEE`).
    pub base_fee: U256,
}

impl Default for BlockEnv {
    fn default() -> Self {
        BlockEnv {
            number: 10_000_000,
            timestamp: 1_700_000_000,
            coinbase: Address::from_low_u64(0xc0ffee),
            gas_limit: 30_000_000,
            difficulty: U256::from_u64(2_000_000_000_000),
            chain_id: 1,
            base_fee: U256::from_u64(1_000_000_000),
        }
    }
}

impl BlockEnv {
    /// Advance to the next block: increments the number and adds a plausible
    /// inter-block delay to the timestamp.
    pub fn advance(&mut self) {
        self.number += 1;
        self.timestamp += 13;
    }
}

/// A top-level message (transaction) to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Immediate caller (`msg.sender`).
    pub caller: Address,
    /// Transaction originator (`tx.origin`). Usually equals `caller` for
    /// top-level transactions.
    pub origin: Address,
    /// Callee contract.
    pub to: Address,
    /// Ether value transferred (`msg.value`).
    pub value: U256,
    /// Calldata (function selector + ABI-encoded arguments).
    pub data: Vec<u8>,
    /// Gas limit for the transaction.
    pub gas: u64,
}

impl Message {
    /// Convenience constructor with origin == caller and a default gas limit.
    pub fn new(caller: Address, to: Address, value: U256, data: Vec<u8>) -> Self {
        Message {
            caller,
            origin: caller,
            to,
            value,
            data,
            gas: 10_000_000,
        }
    }

    /// Function selector of the calldata, if present.
    pub fn selector(&self) -> Option<[u8; 4]> {
        if self.data.len() >= 4 {
            Some([self.data[0], self.data[1], self.data[2], self.data[3]])
        } else {
            None
        }
    }
}

/// The outcome of executing a top-level transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionResult {
    /// True if the outermost frame completed without exception and state was
    /// committed.
    pub success: bool,
    /// Return data of the outermost frame.
    pub output: Vec<u8>,
    /// Gas consumed.
    pub gas_used: u64,
    /// Why execution halted.
    pub halt: HaltReason,
    /// Full instrumentation trace.
    pub trace: ExecutionTrace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_env_advance() {
        let mut env = BlockEnv::default();
        let (n0, t0) = (env.number, env.timestamp);
        env.advance();
        assert_eq!(env.number, n0 + 1);
        assert!(env.timestamp > t0);
    }

    #[test]
    fn message_selector_extraction() {
        let msg = Message::new(
            Address::from_low_u64(1),
            Address::from_low_u64(2),
            U256::ZERO,
            vec![0xaa, 0xbb, 0xcc, 0xdd, 0x01],
        );
        assert_eq!(msg.selector(), Some([0xaa, 0xbb, 0xcc, 0xdd]));
        let short = Message::new(
            Address::from_low_u64(1),
            Address::from_low_u64(2),
            U256::ZERO,
            vec![0xaa],
        );
        assert_eq!(short.selector(), None);
    }
}
