//! Pattern-based static analyzers.
//!
//! Table III of the paper compares MuFuzz against static analysis tools
//! (Oyente, Mythril, Osiris, Securify, Slither). We re-implement the *kind*
//! of syntactic/AST pattern matching those tools rely on, on top of our own
//! AST. Each named tool supports the bug-class subset from Table I; their
//! characteristic false positives (no dynamic confirmation, guards ignored
//! for some classes) and false negatives (unsupported classes) emerge from
//! the pattern rules themselves.

use mufuzz_lang::{CompiledContract, EnvValue, Expr, Function, Stmt};
use mufuzz_oracles::{BugClass, BugFinding};
use std::collections::BTreeSet;

/// A static analysis tool: a name, a supported bug-class set and an analysis
/// entry point. Analyzers are stateless, so they are `Send + Sync` and can be
/// shared across experiment worker threads.
pub trait StaticAnalyzer: Send + Sync {
    /// Tool display name.
    fn name(&self) -> &'static str;
    /// Bug classes the tool can report.
    fn supported(&self) -> BTreeSet<BugClass>;
    /// Analyse one compiled contract.
    fn analyze(&self, compiled: &CompiledContract) -> Vec<BugFinding> {
        let mut findings = Vec::new();
        for class in self.supported() {
            findings.extend(detect(class, compiled));
        }
        findings
    }
}

/// Does any sub-expression satisfy the predicate?
fn expr_contains(expr: &Expr, pred: &dyn Fn(&Expr) -> bool) -> bool {
    if pred(expr) {
        return true;
    }
    match expr {
        Expr::Index(a, b) | Expr::Binary(_, a, b) | Expr::Send(a, b) | Expr::CallValue(a, b) => {
            expr_contains(a, pred) || expr_contains(b, pred)
        }
        Expr::Not(a) | Expr::BalanceOf(a) | Expr::Cast(_, a) => expr_contains(a, pred),
        Expr::Keccak(args) => args.iter().any(|a| expr_contains(a, pred)),
        Expr::DelegateCall(a, args) => {
            expr_contains(a, pred) || args.iter().any(|x| expr_contains(x, pred))
        }
        Expr::Number(_) | Expr::Bool(_) | Expr::Ident(_) | Expr::Env(_) => false,
    }
}

/// Visit every statement in a block (including nested blocks), in order.
fn for_each_stmt<'a>(block: &'a [Stmt], visit: &mut dyn FnMut(&'a Stmt)) {
    for stmt in block {
        visit(stmt);
        match stmt {
            Stmt::If(_, then_block, else_block) => {
                for_each_stmt(then_block, visit);
                for_each_stmt(else_block, visit);
            }
            Stmt::While(_, body) => for_each_stmt(body, visit),
            _ => {}
        }
    }
}

/// All branch/require condition expressions of a function body.
fn conditions(body: &[Stmt]) -> Vec<&Expr> {
    let mut out = Vec::new();
    for_each_stmt(body, &mut |stmt| match stmt {
        Stmt::If(cond, _, _) | Stmt::While(cond, _) | Stmt::Require(cond) => out.push(cond),
        _ => {}
    });
    out
}

fn is_block_env(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Env(EnvValue::BlockTimestamp) | Expr::Env(EnvValue::BlockNumber)
    )
}

fn is_sender_or_origin(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Env(EnvValue::MsgSender) | Expr::Env(EnvValue::TxOrigin)
    )
}

/// Run the pattern rule for one bug class over a contract.
pub fn detect(class: BugClass, compiled: &CompiledContract) -> Vec<BugFinding> {
    let mut findings = Vec::new();
    let contract = &compiled.contract;
    for function in contract.functions.iter().filter(|f| !f.name.is_empty()) {
        if let Some(detail) = detect_in_function(class, function) {
            findings.push(BugFinding::new(
                class,
                Some(function.name.clone()),
                0,
                detail,
            ));
        }
    }
    // Ether freezing is a contract-level property.
    if class == BugClass::EtherFreezing && detect_ether_freezing(compiled) {
        findings.push(BugFinding::new(
            BugClass::EtherFreezing,
            None,
            0,
            "payable contract without any value-releasing statement",
        ));
    }
    findings
}

fn detect_in_function(class: BugClass, function: &Function) -> Option<&'static str> {
    let body = &function.body;
    match class {
        BugClass::BlockDependency => {
            let in_condition = conditions(body)
                .iter()
                .any(|c| expr_contains(c, &is_block_env));
            let mut in_transfer = false;
            for_each_stmt(body, &mut |stmt| {
                if let Stmt::Transfer(_, amount) = stmt {
                    in_transfer |= expr_contains(amount, &is_block_env);
                }
            });
            (in_condition || in_transfer).then_some("block state referenced in control flow")
        }
        BugClass::UnprotectedDelegatecall => {
            let mut found = false;
            for_each_stmt(body, &mut |stmt| {
                let check = |e: &Expr| matches!(e, Expr::DelegateCall(_, _));
                match stmt {
                    Stmt::ExprStmt(e) | Stmt::Require(e) | Stmt::Assign(_, _, e) => {
                        found |= expr_contains(e, &check)
                    }
                    _ => {}
                }
            });
            // Static pattern: every delegatecall is reported, guards are not
            // modelled (this is what produces the tools' false positives).
            found.then_some("delegatecall present")
        }
        BugClass::IntegerOverflow => {
            let mut found = false;
            for_each_stmt(body, &mut |stmt| {
                if let Stmt::Assign(_, _, value) = stmt {
                    let has_arith = expr_contains(
                        value,
                        &|e| matches!(e, Expr::Binary(op, _, _) if op.is_arithmetic()),
                    );
                    found |= has_arith;
                }
            });
            found.then_some("unchecked arithmetic in an assignment")
        }
        BugClass::Reentrancy => {
            // call.value followed by a later state write in the same function.
            let mut saw_call = false;
            let mut write_after_call = false;
            for_each_stmt(body, &mut |stmt| {
                let has_call_value = |e: &Expr| matches!(e, Expr::CallValue(_, _));
                match stmt {
                    Stmt::ExprStmt(e) | Stmt::Require(e) if expr_contains(e, &has_call_value) => {
                        saw_call = true;
                    }
                    Stmt::Assign(_, _, _) if saw_call => write_after_call = true,
                    _ => {}
                }
            });
            write_after_call.then_some("state written after a call.value invocation")
        }
        BugClass::UnprotectedSelfDestruct => {
            let mut guard_seen = false;
            let mut unguarded = false;
            for_each_stmt(body, &mut |stmt| match stmt {
                Stmt::Require(cond) | Stmt::If(cond, _, _)
                    if expr_contains(cond, &is_sender_or_origin) =>
                {
                    guard_seen = true;
                }
                Stmt::SelfDestruct(_) if !guard_seen => unguarded = true,
                _ => {}
            });
            unguarded.then_some("selfdestruct reachable without a sender guard")
        }
        BugClass::StrictEtherEquality => {
            let strict = conditions(body).iter().any(|c| {
                expr_contains(c, &|e| {
                    matches!(e, Expr::Binary(mufuzz_lang::BinOp::Eq, a, b)
                        if expr_contains(a, &|x| matches!(x, Expr::BalanceOf(_)))
                            || expr_contains(b, &|x| matches!(x, Expr::BalanceOf(_))))
                })
            });
            strict.then_some("balance compared with strict equality")
        }
        BugClass::TxOriginUse => {
            let uses_origin = conditions(body)
                .iter()
                .any(|c| expr_contains(c, &|e| matches!(e, Expr::Env(EnvValue::TxOrigin))));
            uses_origin.then_some("tx.origin used in a condition")
        }
        BugClass::UnhandledException => {
            let mut found = false;
            for_each_stmt(body, &mut |stmt| {
                if let Stmt::ExprStmt(e) = stmt {
                    found |= matches!(e, Expr::Send(_, _) | Expr::CallValue(_, _));
                }
            });
            found.then_some("low-level call result is discarded")
        }
        BugClass::EtherFreezing => None,
    }
}

fn detect_ether_freezing(compiled: &CompiledContract) -> bool {
    let contract = &compiled.contract;
    let accepts = contract.functions.iter().any(|f| f.payable) || contract.constructor_payable;
    if !accepts {
        return false;
    }
    let mut releases = false;
    for f in &contract.functions {
        for_each_stmt(&f.body, &mut |stmt| match stmt {
            Stmt::Transfer(_, _) | Stmt::SelfDestruct(_) => releases = true,
            Stmt::ExprStmt(e) | Stmt::Require(e) | Stmt::Assign(_, _, e) => {
                releases |= expr_contains(e, &|x| {
                    matches!(
                        x,
                        Expr::Send(_, _) | Expr::CallValue(_, _) | Expr::DelegateCall(_, _)
                    )
                });
            }
            _ => {}
        });
    }
    !releases
}

macro_rules! static_tool {
    ($struct_name:ident, $display:literal, [$($class:ident),* $(,)?]) => {
        /// Pattern-based stand-in for the corresponding published tool; the
        /// supported bug classes follow Table I of the paper.
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $struct_name;

        impl StaticAnalyzer for $struct_name {
            fn name(&self) -> &'static str {
                $display
            }
            fn supported(&self) -> BTreeSet<BugClass> {
                BTreeSet::from([$(BugClass::$class),*])
            }
        }
    };
}

static_tool!(
    OyenteLike,
    "Oyente",
    [BlockDependency, IntegerOverflow, Reentrancy]
);
static_tool!(
    OsirisLike,
    "Osiris",
    [BlockDependency, IntegerOverflow, Reentrancy]
);
static_tool!(
    MythrilLike,
    "Mythril",
    [
        BlockDependency,
        UnprotectedDelegatecall,
        IntegerOverflow,
        Reentrancy,
        UnprotectedSelfDestruct,
        StrictEtherEquality,
        TxOriginUse,
        UnhandledException,
    ]
);
static_tool!(SecurifyLike, "Securify", [Reentrancy, UnhandledException]);
static_tool!(
    SlitherLike,
    "Slither",
    [
        BlockDependency,
        UnprotectedDelegatecall,
        EtherFreezing,
        Reentrancy,
        UnprotectedSelfDestruct,
        StrictEtherEquality,
        TxOriginUse,
        UnhandledException,
    ]
);

/// The five static analyzers used in the Table III comparison.
pub fn all_static_analyzers() -> Vec<Box<dyn StaticAnalyzer>> {
    vec![
        Box::new(OyenteLike),
        Box::new(MythrilLike),
        Box::new(OsirisLike),
        Box::new(SecurifyLike),
        Box::new(SlitherLike),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_corpus::contracts;
    use mufuzz_lang::compile_source;

    fn classes_of(tool: &dyn StaticAnalyzer, source: &str) -> BTreeSet<BugClass> {
        let compiled = compile_source(source).unwrap();
        tool.analyze(&compiled).iter().map(|f| f.class).collect()
    }

    #[test]
    fn mythril_like_finds_reentrancy_and_tx_origin() {
        let bank = contracts::reentrant_bank().source;
        assert!(classes_of(&MythrilLike, &bank).contains(&BugClass::Reentrancy));
        let auth = contracts::tx_origin_auth().source;
        assert!(classes_of(&MythrilLike, &auth).contains(&BugClass::TxOriginUse));
    }

    #[test]
    fn oyente_like_cannot_report_unsupported_classes() {
        let proxy = contracts::delegatecall_proxy().source;
        let classes = classes_of(&OyenteLike, &proxy);
        assert!(!classes.contains(&BugClass::UnprotectedDelegatecall));
        let wallet = contracts::suicidal_wallet().source;
        assert!(!classes_of(&OyenteLike, &wallet).contains(&BugClass::UnprotectedSelfDestruct));
    }

    #[test]
    fn slither_like_finds_ether_freezing_and_strict_equality() {
        let vault = contracts::frozen_vault().source;
        assert!(classes_of(&SlitherLike, &vault).contains(&BugClass::EtherFreezing));
        let game = contracts::strict_equality_game().source;
        assert!(classes_of(&SlitherLike, &game).contains(&BugClass::StrictEtherEquality));
        // The benign ledger releases funds, so it is not frozen.
        let benign = contracts::benign_ledger().source;
        assert!(!classes_of(&SlitherLike, &benign).contains(&BugClass::EtherFreezing));
    }

    #[test]
    fn static_delegatecall_rule_produces_false_positive_on_guarded_proxy() {
        // The guarded forwardSafe() is also reported by the static pattern —
        // the kind of false positive dynamic confirmation avoids.
        let compiled = compile_source(&contracts::delegatecall_proxy().source).unwrap();
        let findings = MythrilLike.analyze(&compiled);
        let delegate_findings: Vec<_> = findings
            .iter()
            .filter(|f| f.class == BugClass::UnprotectedDelegatecall)
            .collect();
        assert_eq!(delegate_findings.len(), 2);
    }

    #[test]
    fn unchecked_send_rule_distinguishes_checked_calls() {
        let compiled = compile_source(&contracts::unchecked_send().source).unwrap();
        let findings = SecurifyLike.analyze(&compiled);
        let ue: Vec<_> = findings
            .iter()
            .filter(|f| f.class == BugClass::UnhandledException)
            .collect();
        assert_eq!(ue.len(), 1);
        assert_eq!(ue[0].function.as_deref(), Some("pay"));
    }

    #[test]
    fn every_tool_analyzes_the_whole_handwritten_corpus_without_panicking() {
        for tool in all_static_analyzers() {
            for c in contracts::all_handwritten() {
                let compiled = compile_source(&c.source).unwrap();
                let _ = tool.analyze(&compiled);
            }
        }
    }

    #[test]
    fn supported_sets_follow_table_one() {
        assert_eq!(OyenteLike.supported().len(), 3);
        assert_eq!(MythrilLike.supported().len(), 8);
        assert_eq!(SecurifyLike.supported().len(), 2);
        assert_eq!(SlitherLike.supported().len(), 8);
        assert!(!MythrilLike.supported().contains(&BugClass::EtherFreezing));
        assert!(SlitherLike.supported().contains(&BugClass::EtherFreezing));
    }
}
