//! Benchmarks of the fuzzing pipeline: sequence execution throughput,
//! mutation operators, full (small-budget) campaigns for MuFuzz and the
//! baselines, and the end-to-end ablation cost of the mask computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mufuzz::{
    ContractHarness, Fuzzer, FuzzerConfig, InterestingValues, MutationOp, Sequence, TxInput,
};
use mufuzz_baselines::{
    ConFuzziusStrategy, FuzzRequest, FuzzingStrategy, MuFuzzStrategy, SFuzzStrategy,
};
use mufuzz_corpus::contracts;
use mufuzz_evm::{ether, U256};
use mufuzz_lang::compile_source;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sequence_execution(c: &mut Criterion) {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let harness = ContractHarness::new(compiled, &FuzzerConfig::default()).unwrap();
    let sequence = Sequence::new(vec![
        TxInput::new("invest", 0, ether(100), &[ether(100)]),
        TxInput::simple("refund"),
        TxInput::new("invest", 1, U256::ONE, &[U256::ONE]),
        TxInput::simple("withdraw"),
    ]);
    c.bench_function("harness_execute_4tx_sequence", |bencher| {
        bencher.iter(|| black_box(harness.execute_sequence(&sequence)).successes)
    });
}

fn bench_mutation_operators(c: &mut Criterion) {
    let stream: Vec<u8> = (0..128u32).map(|i| i as u8).collect();
    let pool = InterestingValues::defaults();
    let mut group = c.benchmark_group("mutation");
    for op in MutationOp::ALL {
        group.bench_with_input(
            BenchmarkId::new("apply_op", format!("{op:?}")),
            &op,
            |b, &op| {
                let mut rng = SmallRng::seed_from_u64(1);
                b.iter(|| mufuzz::mutation::apply_op(black_box(&stream), op, 2, &mut rng, &pool))
            },
        );
    }
    group.finish();
}

fn bench_campaigns(c: &mut Criterion) {
    let source = contracts::crowdsale().source;
    let mut group = c.benchmark_group("campaign_200_execs");
    group.sample_size(10);
    for (name, strategy) in [
        ("MuFuzz", &MuFuzzStrategy as &dyn FuzzingStrategy),
        ("ConFuzzius", &ConFuzziusStrategy),
        ("sFuzz", &SFuzzStrategy),
    ] {
        group.bench_function(name, |bencher| {
            bencher.iter(|| {
                let compiled = compile_source(&source).unwrap();
                let report = strategy.fuzz(compiled, &FuzzRequest::new(200, 1)).unwrap();
                black_box(report.covered_edges)
            })
        });
    }
    group.finish();
}

fn bench_mask_ablation(c: &mut Criterion) {
    // Cost of running with and without the mask computation on the Game
    // contract, whose strict msg.value guard is exactly what the mask targets.
    let source = contracts::game().source;
    let mut group = c.benchmark_group("mask_ablation_150_execs");
    group.sample_size(10);
    group.bench_function("with_mask", |bencher| {
        bencher.iter(|| {
            let compiled = compile_source(&source).unwrap();
            let mut fuzzer = Fuzzer::new(
                compiled,
                FuzzerConfig::mufuzz(150).with_rng_seed(2).with_workers(1),
            )
            .unwrap();
            black_box(fuzzer.run().covered_edges)
        })
    });
    group.bench_function("without_mask", |bencher| {
        bencher.iter(|| {
            let compiled = compile_source(&source).unwrap();
            let mut fuzzer = Fuzzer::new(
                compiled,
                FuzzerConfig::mufuzz(150)
                    .with_rng_seed(2)
                    .with_workers(1)
                    .without_mask_guidance(),
            )
            .unwrap();
            black_box(fuzzer.run().covered_edges)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sequence_execution,
    bench_mutation_operators,
    bench_campaigns,
    bench_mask_ablation
);
criterion_main!(benches);
