//! Control-flow graph over compiled bytecode.
//!
//! The CFG provides:
//! * enumeration of all conditional branches (`JUMPI`) and therefore the
//!   total number of branch edges — the denominator of the paper's branch
//!   coverage metric,
//! * per-branch static nesting depth (how many conditional branches dominate
//!   the path from the function entry), used to identify "deeply nested"
//!   branches for the mask-guided mutation,
//! * forward reachability of *vulnerable instructions* (`CALL`,
//!   `DELEGATECALL`, `SELFDESTRUCT`, `TIMESTAMP`, ...) from each branch, used
//!   by the dynamic energy adjustment (paper §IV-C, Algorithm 3).
//!
//! Jump targets are recovered with a peephole over the `PUSH`/`JUMP(I)`
//! pattern the `mufuzz-lang` compiler emits.

use mufuzz_evm::{disassemble, Instruction, Opcode, U256};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A basic block of the CFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Program counter of the first instruction.
    pub start: usize,
    /// Program counter one past the last instruction.
    pub end: usize,
    /// Instructions in the block.
    pub instructions: Vec<Instruction>,
    /// Successor block start pcs.
    pub successors: Vec<usize>,
    /// Whether the block ends in a conditional branch.
    pub is_branch: bool,
}

impl BasicBlock {
    /// Program counters of vulnerable instructions inside the block.
    pub fn vulnerable_pcs(&self) -> Vec<usize> {
        self.instructions
            .iter()
            .filter(|i| i.opcode.is_vulnerable_instruction())
            .map(|i| i.pc)
            .collect()
    }
}

/// A conditional branch site in the code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchSite {
    /// Program counter of the `JUMPI`.
    pub pc: usize,
    /// Taken-edge destination, if statically known.
    pub taken_target: Option<usize>,
    /// Fall-through destination.
    pub fallthrough: usize,
    /// Static nesting depth: number of conditional branches on the shortest
    /// path from the code entry to this branch.
    pub nesting_depth: usize,
    /// Vulnerable instruction pcs reachable from this branch.
    pub reachable_vulnerable: BTreeSet<usize>,
}

impl BranchSite {
    /// The paper calls a branch *nested* when it sits under at least two
    /// conditional statements.
    pub fn is_nested(&self) -> bool {
        self.nesting_depth >= 2
    }
}

/// Control-flow graph of one contract's runtime code.
#[derive(Clone, Debug, Default)]
pub struct ControlFlowGraph {
    /// Basic blocks keyed by start pc.
    pub blocks: BTreeMap<usize, BasicBlock>,
    /// Conditional branch sites keyed by `JUMPI` pc.
    pub branches: BTreeMap<usize, BranchSite>,
    /// All vulnerable-instruction pcs in the code.
    pub vulnerable_pcs: BTreeSet<usize>,
}

impl ControlFlowGraph {
    /// Build the CFG for a code blob.
    pub fn build(code: &[u8]) -> ControlFlowGraph {
        let instructions = disassemble(code);
        if instructions.is_empty() {
            return ControlFlowGraph::default();
        }

        // Block leaders: first instruction, jump targets, instruction after a
        // terminator.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(instructions[0].pc);
        let mut static_targets: HashMap<usize, usize> = HashMap::new();
        for (idx, instr) in instructions.iter().enumerate() {
            match instr.opcode {
                Opcode::Jump | Opcode::JumpI => {
                    // Peephole: the compiler always pushes the target right
                    // before the jump.
                    if idx > 0 {
                        if let Opcode::Push(_) = instructions[idx - 1].opcode {
                            let target = U256::from_be_slice(&instructions[idx - 1].immediate);
                            if let Some(t) = target.to_usize() {
                                static_targets.insert(instr.pc, t);
                                leaders.insert(t);
                            }
                        }
                    }
                    if let Some(next) = instructions.get(idx + 1) {
                        leaders.insert(next.pc);
                    }
                }
                op if op.is_terminator() => {
                    if let Some(next) = instructions.get(idx + 1) {
                        leaders.insert(next.pc);
                    }
                }
                Opcode::JumpDest => {
                    leaders.insert(instr.pc);
                }
                _ => {}
            }
        }

        // Partition instructions into blocks.
        let mut blocks: BTreeMap<usize, BasicBlock> = BTreeMap::new();
        let mut current: Vec<Instruction> = Vec::new();
        let mut current_start = instructions[0].pc;
        let flush = |blocks: &mut BTreeMap<usize, BasicBlock>,
                     start: usize,
                     instrs: &mut Vec<Instruction>| {
            if instrs.is_empty() {
                return;
            }
            let last = instrs.last().unwrap();
            let end = last.pc + 1 + last.opcode.immediate_size();
            blocks.insert(
                start,
                BasicBlock {
                    start,
                    end,
                    instructions: std::mem::take(instrs),
                    successors: Vec::new(),
                    is_branch: false,
                },
            );
        };
        for instr in &instructions {
            if leaders.contains(&instr.pc) && !current.is_empty() {
                flush(&mut blocks, current_start, &mut current);
                current_start = instr.pc;
            }
            if current.is_empty() {
                current_start = instr.pc;
            }
            current.push(instr.clone());
        }
        flush(&mut blocks, current_start, &mut current);

        // Successor edges.
        let block_starts: Vec<usize> = blocks.keys().copied().collect();
        let next_block_start = |end: usize| block_starts.iter().copied().find(|&s| s >= end);
        let mut updates: Vec<(usize, Vec<usize>, bool)> = Vec::new();
        for (start, block) in &blocks {
            let last = block.instructions.last().unwrap();
            let mut successors = Vec::new();
            let mut is_branch = false;
            match last.opcode {
                Opcode::Jump => {
                    if let Some(&t) = static_targets.get(&last.pc) {
                        successors.push(t);
                    }
                }
                Opcode::JumpI => {
                    is_branch = true;
                    if let Some(&t) = static_targets.get(&last.pc) {
                        successors.push(t);
                    }
                    if let Some(next) = next_block_start(block.end) {
                        successors.push(next);
                    }
                }
                Opcode::Stop
                | Opcode::Return
                | Opcode::Revert
                | Opcode::Invalid
                | Opcode::SelfDestruct => {}
                _ => {
                    if let Some(next) = next_block_start(block.end) {
                        successors.push(next);
                    }
                }
            }
            updates.push((*start, successors, is_branch));
        }
        for (start, successors, is_branch) in updates {
            if let Some(block) = blocks.get_mut(&start) {
                block.successors = successors;
                block.is_branch = is_branch;
            }
        }

        let vulnerable_pcs: BTreeSet<usize> = instructions
            .iter()
            .filter(|i| i.opcode.is_vulnerable_instruction())
            .map(|i| i.pc)
            .collect();

        let mut cfg = ControlFlowGraph {
            blocks,
            branches: BTreeMap::new(),
            vulnerable_pcs,
        };
        cfg.compute_branches(&static_targets);
        cfg
    }

    fn compute_branches(&mut self, static_targets: &HashMap<usize, usize>) {
        // Nesting depth: BFS from the entry block counting how many branch
        // blocks precede each block on the shortest path.
        let entry = match self.blocks.keys().next() {
            Some(&e) => e,
            None => return,
        };
        let mut depth: HashMap<usize, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        depth.insert(entry, 0);
        queue.push_back(entry);
        while let Some(b) = queue.pop_front() {
            let (succs, is_branch) = match self.blocks.get(&b) {
                Some(block) => (block.successors.clone(), block.is_branch),
                None => continue,
            };
            let next_depth = depth[&b] + usize::from(is_branch);
            for s in succs {
                if !depth.contains_key(&s) || depth[&s] > next_depth {
                    depth.insert(s, next_depth);
                    queue.push_back(s);
                }
            }
        }

        // Vulnerable-instruction reachability: reverse propagation over the
        // block graph until a fixed point.
        let mut reach: HashMap<usize, BTreeSet<usize>> = self
            .blocks
            .iter()
            .map(|(start, b)| (*start, b.vulnerable_pcs().into_iter().collect()))
            .collect();
        loop {
            let mut changed = false;
            let starts: Vec<usize> = self.blocks.keys().copied().collect();
            for &start in &starts {
                let succ_union: BTreeSet<usize> = self.blocks[&start]
                    .successors
                    .iter()
                    .filter_map(|s| reach.get(s))
                    .flatten()
                    .copied()
                    .collect();
                let entry = reach.entry(start).or_default();
                let before = entry.len();
                entry.extend(succ_union);
                if entry.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (start, block) in &self.blocks {
            if !block.is_branch {
                continue;
            }
            let jumpi = block.instructions.last().unwrap();
            let block_depth = depth.get(start).copied().unwrap_or(0);
            let taken_target = static_targets.get(&jumpi.pc).copied();
            let fallthrough = block.end;
            let reachable: BTreeSet<usize> = block
                .successors
                .iter()
                .filter_map(|s| reach.get(s))
                .flatten()
                .copied()
                .collect();
            self.branches.insert(
                jumpi.pc,
                BranchSite {
                    pc: jumpi.pc,
                    taken_target,
                    fallthrough,
                    nesting_depth: block_depth + 1,
                    reachable_vulnerable: reachable,
                },
            );
        }
    }

    /// Total number of branch edges (two per `JUMPI`) — the coverage
    /// denominator. Coverage is block-edge granular: every `JUMPI`
    /// terminates exactly one basic block, so this equals two edges per
    /// [`ControlFlowGraph::branch_blocks`] entry and matches the bitmap
    /// sizing derived from the interpreter's block-lowered program
    /// (`EdgeIndex::from_blocks`).
    pub fn total_branch_edges(&self) -> usize {
        self.branches.len() * 2
    }

    /// The basic blocks that end in a conditional branch, in code order —
    /// one per `JUMPI` site, the block-granular view of the branch map.
    pub fn branch_blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.values().filter(|b| b.is_branch)
    }

    /// Branches whose static nesting depth marks them as deeply nested.
    pub fn nested_branches(&self) -> impl Iterator<Item = &BranchSite> {
        self.branches.values().filter(|b| b.is_nested())
    }

    /// Branches from which at least one vulnerable instruction is reachable.
    pub fn vulnerable_branches(&self) -> impl Iterator<Item = &BranchSite> {
        self.branches
            .values()
            .filter(|b| !b.reachable_vulnerable.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    const NESTED: &str = r#"
        contract Nested {
            uint256 total;
            mapping(address => uint256) balance;
            function play(uint256 number) public payable {
                require(msg.value == 88);
                if (number < 100) {
                    if (number % 2 == 0) {
                        balance[msg.sender] += msg.value * 10;
                    } else {
                        balance[msg.sender] += msg.value * 5;
                    }
                }
                total += 1;
            }
            function drain() public {
                if (total > 3) {
                    msg.sender.transfer(total);
                }
            }
        }
    "#;

    fn cfg() -> ControlFlowGraph {
        ControlFlowGraph::build(&compile_source(NESTED).unwrap().runtime)
    }

    #[test]
    fn builds_blocks_covering_all_code() {
        let compiled = compile_source(NESTED).unwrap();
        let cfg = ControlFlowGraph::build(&compiled.runtime);
        assert!(!cfg.blocks.is_empty());
        // Every instruction belongs to exactly one block.
        let total_instrs: usize = cfg.blocks.values().map(|b| b.instructions.len()).sum();
        assert_eq!(total_instrs, compiled.instruction_count());
        // Blocks do not overlap.
        let mut prev_end = 0;
        for (start, block) in &cfg.blocks {
            assert!(*start >= prev_end);
            prev_end = block.end;
        }
    }

    #[test]
    fn finds_all_conditional_branches() {
        let cfg = cfg();
        // Dispatcher: 2 selector comparisons. play: value-guard on require +
        // require + 2 ifs. drain: non-payable guard + if. At least 7 JUMPIs.
        assert!(cfg.branches.len() >= 7, "found {}", cfg.branches.len());
        assert_eq!(cfg.total_branch_edges(), cfg.branches.len() * 2);
    }

    #[test]
    fn branch_successors_are_recorded() {
        let cfg = cfg();
        for branch in cfg.branches.values() {
            assert!(branch.taken_target.is_some());
            assert!(branch.fallthrough > branch.pc);
        }
    }

    #[test]
    fn nesting_depth_increases_for_inner_branches() {
        let cfg = cfg();
        let depths: Vec<usize> = cfg.branches.values().map(|b| b.nesting_depth).collect();
        let max = depths.iter().copied().max().unwrap();
        let min = depths.iter().copied().min().unwrap();
        // The innermost if in `play` is much deeper than dispatcher branches.
        assert!(max >= 4, "max depth {max}");
        assert_eq!(min, 1);
        assert!(cfg.nested_branches().count() >= 1);
    }

    #[test]
    fn vulnerable_reachability_covers_transfer_branch() {
        let cfg = cfg();
        // The CALL inside drain() must be reachable from at least one branch.
        assert!(!cfg.vulnerable_pcs.is_empty());
        assert!(cfg.vulnerable_branches().count() >= 1);
        // Some branch (e.g. inside play after the transfer-free paths) should
        // not reach every vulnerable instruction — reachability is not a
        // constant map.
        let reach_sizes: BTreeSet<usize> = cfg
            .branches
            .values()
            .map(|b| b.reachable_vulnerable.len())
            .collect();
        assert!(reach_sizes.len() > 1);
    }

    #[test]
    fn straight_line_code_has_no_branches() {
        let compiled = compile_source(
            "contract Line { uint256 x; function set(uint256 v) public payable { x = v; } }",
        )
        .unwrap();
        let cfg = ControlFlowGraph::build(&compiled.runtime);
        // Only the dispatcher selector comparison remains.
        assert_eq!(cfg.branches.len(), 1);
    }

    #[test]
    fn empty_code_produces_empty_cfg() {
        let cfg = ControlFlowGraph::build(&[]);
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.total_branch_edges(), 0);
    }
}
