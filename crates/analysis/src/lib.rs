//! # mufuzz-analysis
//!
//! Static analyses powering the three MuFuzz components:
//!
//! * [`dataflow`] — state-variable read/write sets, branch-condition reads and
//!   read-after-write detection over the AST (feeds the sequence-aware
//!   mutation, paper §IV-A),
//! * [`depgraph`] — the write-before-read function dependency graph and the
//!   [`SequencePlan`] (base ordering + repetition candidates),
//! * [`cfg`](mod@cfg) — a bytecode control-flow graph with branch
//!   enumeration, static
//!   nesting depth and vulnerable-instruction reachability (feeds the
//!   mask-guided mutation and the dynamic energy adjustment, §IV-B/C),
//! * [`edge_index`] — a dense, stable `u32` numbering of the CFG's branch
//!   edges, the basis of the campaign engine's lock-free atomic coverage
//!   bitmap,
//! * [`distance`] — sFuzz-style branch-distance feedback extracted from
//!   execution traces (§IV-B).
//!
//! ```
//! use mufuzz_analysis::{analyze_contract, plan_sequence, ControlFlowGraph};
//! use mufuzz_lang::compile_source;
//!
//! let compiled = compile_source(
//!     "contract C {
//!          uint256 total;
//!          function add(uint256 x) public { total += x; }
//!          function check() public { if (total > 10) { bug(); } }
//!      }",
//! )
//! .unwrap();
//! let flow = analyze_contract(&compiled.contract);
//! let plan = plan_sequence(&flow);
//! assert_eq!(plan.base_order[0], "add");
//! let cfg = ControlFlowGraph::build(&compiled.runtime);
//! assert!(cfg.total_branch_edges() > 0);
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod depgraph;
pub mod distance;
pub mod edge_index;

pub use cfg::{BasicBlock, BranchSite, ControlFlowGraph};
pub use dataflow::{analyze_contract, analyze_function, DataFlowInfo, FunctionAccess};
pub use depgraph::{plan_sequence, DependencyGraph, SequencePlan};
pub use distance::{normalize, DistanceMap};
pub use edge_index::EdgeIndex;
