//! Integration tests for the campaign service: checkpoint/resume
//! bit-identity, snapshot validation, event streaming and cross-campaign
//! concurrency.
//!
//! The checkpoint contract (satellite of the fleet-mode redesign): pausing a
//! `workers == 1` campaign at a deterministic execution mark, serializing it
//! to a [`CampaignSnapshot`], restoring from bytes and resuming must produce
//! exactly the report an uninterrupted run produces — same coverage, same
//! executions, same corpus, same findings, same interesting shapes.

use mufuzz::{
    CampaignEvent, CampaignProgress, CampaignReport, CampaignService, CampaignSnapshot,
    DeterminismProfile, FuzzerConfig, SnapshotError, SubmitOptions,
};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;

fn crowdsale_config(seed: u64) -> FuzzerConfig {
    FuzzerConfig::mufuzz(400)
        .with_rng_seed(seed)
        .with_workers(1)
}

fn uninterrupted_run(seed: u64) -> CampaignReport {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    let handle = service.submit(compiled, crowdsale_config(seed)).unwrap();
    handle.wait()
}

/// Pause a campaign at `pause_at` executions and checkpoint it.
fn checkpoint_at(seed: u64, pause_at: usize) -> CampaignSnapshot {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    let handle = service
        .submit_with(
            compiled,
            crowdsale_config(seed),
            SubmitOptions::pause_at(pause_at),
        )
        .unwrap();
    handle.join();
    match handle.poll() {
        CampaignProgress::Paused { executions } => {
            assert!(
                executions >= pause_at && executions < 400,
                "paused at {executions}, expected in [{pause_at}, 400)"
            );
        }
        other => panic!("expected a paused campaign, got {other:?}"),
    }
    handle.checkpoint().expect("paused campaign checkpoints")
}

/// The headline guarantee: pause -> snapshot -> byte round-trip -> resume
/// reproduces the uninterrupted campaign bit for bit, for several seeds.
#[test]
fn resumed_campaign_is_bit_identical_to_uninterrupted_run() {
    for seed in [11, 42, 7] {
        let baseline = uninterrupted_run(seed);
        let snapshot = checkpoint_at(seed, 150);
        assert!(snapshot.executions() >= 150);

        // Serialize / deserialize before resuming, so the test also proves
        // the binary format carries the full campaign state.
        let bytes = snapshot.to_bytes();
        let restored = CampaignSnapshot::from_bytes(&bytes).expect("snapshot parses");
        assert_eq!(restored, snapshot);

        let compiled = compile_source(&contracts::crowdsale().source).unwrap();
        let service = CampaignService::new(1);
        let resumed = service
            .resume(compiled, crowdsale_config(seed), &restored)
            .expect("snapshot resumes")
            .wait();

        assert_eq!(resumed.covered_edges, baseline.covered_edges, "seed {seed}");
        assert_eq!(resumed.executions, baseline.executions, "seed {seed}");
        assert_eq!(resumed.corpus_size, baseline.corpus_size, "seed {seed}");
        assert_eq!(resumed.culled_seeds, baseline.culled_seeds, "seed {seed}");
        assert_eq!(
            resumed.interesting_shapes, baseline.interesting_shapes,
            "seed {seed}"
        );
        assert_eq!(
            resumed.detected_classes(),
            baseline.detected_classes(),
            "seed {seed}"
        );
        // The timeline matches in every execution-indexed dimension (wall
        // clock stamps legitimately differ across process runs).
        assert_eq!(resumed.timeline.len(), baseline.timeline.len());
        for (r, b) in resumed.timeline.iter().zip(&baseline.timeline) {
            assert_eq!(r.executions, b.executions, "seed {seed}");
            assert_eq!(r.covered_edges, b.covered_edges, "seed {seed}");
        }
    }
}

/// The seed-11 snapshot constants from `parallel_campaign.rs`, reproduced
/// through a pause/checkpoint/resume cycle: the fleet service's resume path
/// still replays the historical sequential engine exactly.
#[test]
fn resume_reproduces_the_historical_snapshot_constants() {
    let snapshot = checkpoint_at(11, 150);
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    let report = service
        .resume(compiled, crowdsale_config(11), &snapshot)
        .unwrap()
        .wait();
    assert_eq!(report.covered_edges, 18);
    assert_eq!(report.total_edges, 20);
    assert_eq!(report.executions, 400);
    assert_eq!(report.corpus_size, 14);
    assert!(report.findings.is_empty());
    assert_eq!(
        report.interesting_shapes.first().map(String::as_str),
        Some("invest->refund->withdraw")
    );
}

/// A snapshot with a flipped version tag is rejected outright.
#[test]
fn mismatched_snapshot_version_is_rejected() {
    let snapshot = checkpoint_at(11, 100);
    let mut bytes = snapshot.to_bytes();
    bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
    match CampaignSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion(9)) => {}
        other => panic!("expected UnsupportedVersion(9), got {other:?}"),
    }
}

/// Resuming against the wrong contract or the wrong lane count fails
/// loudly instead of corrupting a campaign.
#[test]
fn resume_validates_contract_and_lane_count() {
    let snapshot = checkpoint_at(11, 100);
    let service = CampaignService::new(1);

    let other = compile_source(&contracts::game().source).unwrap();
    match service.resume(other, crowdsale_config(11), &snapshot) {
        Err(SnapshotError::ContractMismatch) => {}
        other => panic!("expected ContractMismatch, got {:?}", other.err()),
    }

    let same = compile_source(&contracts::crowdsale().source).unwrap();
    match service.resume(same, crowdsale_config(11).with_workers(4), &snapshot) {
        Err(SnapshotError::LaneMismatch {
            snapshot: 1,
            config: 4,
        }) => {}
        other => panic!("expected LaneMismatch, got {:?}", other.err()),
    }
}

/// Checkpointing a running or completed campaign is an error.
#[test]
fn checkpoint_requires_a_paused_campaign() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    let handle = service.submit(compiled, crowdsale_config(3)).unwrap();
    handle.join();
    assert_eq!(handle.poll(), CampaignProgress::Completed);
    match handle.checkpoint() {
        Err(SnapshotError::NotPaused) => {}
        other => panic!("expected NotPaused, got {:?}", other.err()),
    }
}

/// The event stream carries the campaign lifecycle: Started first, coverage
/// points in execution order, Completed last.
#[test]
fn event_stream_reports_the_campaign_lifecycle() {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    let handle = service.submit(compiled, crowdsale_config(11)).unwrap();
    handle.join();
    let events = handle.events();
    assert!(
        matches!(events.first(), Some(CampaignEvent::Started { contract }) if contract == "Crowdsale")
    );
    assert!(matches!(events.last(), Some(CampaignEvent::Completed)));
    let coverage: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::Coverage {
                executions,
                covered_edges,
                ..
            } => Some((*executions, *covered_edges)),
            _ => None,
        })
        .collect();
    assert!(
        coverage.len() >= 2,
        "expected several coverage events, got {coverage:?}"
    );
    for pair in coverage.windows(2) {
        assert!(
            pair[0].0 <= pair[1].0,
            "executions out of order: {coverage:?}"
        );
        assert!(
            pair[0].1 <= pair[1].1,
            "coverage not monotone: {coverage:?}"
        );
    }
    let report = handle.wait();
    assert_eq!(report.covered_edges, 18);
}

/// A finding-rich contract streams Finding events that match the final
/// report's deduplicated findings.
#[test]
fn finding_events_match_the_final_report() {
    let compiled = compile_source(&contracts::reentrant_bank().source).unwrap();
    let service = CampaignService::new(1);
    let handle = service
        .submit(compiled, FuzzerConfig::mufuzz(400).with_rng_seed(9))
        .unwrap();
    handle.join();
    let events = handle.events();
    let streamed: usize = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::Finding(_)))
        .count();
    let report = handle.wait();
    assert!(!report.findings.is_empty(), "reentrant bank finds bugs");
    assert!(
        streamed >= report.findings.len(),
        "streamed {streamed} findings, report has {}",
        report.findings.len()
    );
}

/// Round-mode config used by the multi-worker checkpoint tests: small
/// rounds so a 400-execution campaign crosses several barriers and the
/// pause lands at a genuine mid-campaign round boundary.
fn round_config(seed: u64, workers: usize) -> FuzzerConfig {
    FuzzerConfig::mufuzz(400)
        .with_rng_seed(seed)
        .with_workers(workers)
        .with_determinism(DeterminismProfile::Round)
        .with_round_slots(4)
        .with_round_batch(16)
}

/// Pause a round-mode crowdsale campaign at the barrier after `pause_at`
/// executions and checkpoint it.
fn round_checkpoint_at(seed: u64, workers: usize, pause_at: usize) -> CampaignSnapshot {
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(2);
    let handle = service
        .submit_with(
            compiled,
            round_config(seed, workers),
            SubmitOptions::pause_at(pause_at),
        )
        .unwrap();
    handle.join();
    match handle.poll() {
        CampaignProgress::Paused { executions } => {
            assert!(
                executions >= pause_at && executions < 400,
                "paused at {executions}, expected in [{pause_at}, 400)"
            );
        }
        other => panic!("expected a paused campaign, got {other:?}"),
    }
    handle
        .checkpoint()
        .expect("paused round campaign checkpoints")
}

/// Every worker-count-independent dimension of two round-mode reports is
/// bit-identical (wall-clock stamps and the `workers` field may differ).
fn assert_round_reports_identical(a: &CampaignReport, b: &CampaignReport, label: &str) {
    assert_eq!(a.executions, b.executions, "{label}: executions");
    assert_eq!(a.covered_edges, b.covered_edges, "{label}: covered_edges");
    assert_eq!(a.corpus_size, b.corpus_size, "{label}: corpus_size");
    assert_eq!(a.culled_seeds, b.culled_seeds, "{label}: culled_seeds");
    assert_eq!(a.corpus_digest, b.corpus_digest, "{label}: corpus digest");
    assert_eq!(
        a.coverage_digest, b.coverage_digest,
        "{label}: coverage digest"
    );
    assert_eq!(a.findings, b.findings, "{label}: findings");
    assert_eq!(
        a.interesting_shapes, b.interesting_shapes,
        "{label}: shapes"
    );
    assert_eq!(a.timeline.len(), b.timeline.len(), "{label}: timeline");
    for (ra, rb) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(ra.executions, rb.executions, "{label}: timeline executions");
        assert_eq!(
            ra.covered_edges, rb.covered_edges,
            "{label}: timeline coverage"
        );
    }
    assert_eq!(
        a.finding_records.len(),
        b.finding_records.len(),
        "{label}: finding records"
    );
    for (ra, rb) in a.finding_records.iter().zip(&b.finding_records) {
        assert_eq!(ra.seed_uid, rb.seed_uid, "{label}: record uid");
        assert_eq!(ra.round, rb.round, "{label}: record round");
        assert_eq!(ra.slot, rb.slot, "{label}: record slot");
        assert_eq!(ra.sequence, rb.sequence, "{label}: record trace");
        assert_eq!(
            ra.outcome_digest, rb.outcome_digest,
            "{label}: record digest"
        );
    }
}

/// The multi-worker checkpoint contract: pausing a `workers == 4` round-mode
/// campaign at a round barrier, round-tripping the snapshot through bytes
/// and resuming reproduces the uninterrupted run bit for bit — including
/// when the resumed campaign runs at a *different* worker count than the
/// one that was paused.
#[test]
fn round_mode_pause_resume_is_bit_identical_at_four_workers() {
    for seed in [11, 42] {
        let compiled = compile_source(&contracts::crowdsale().source).unwrap();
        let service = CampaignService::new(2);
        let baseline = service
            .submit(compiled, round_config(seed, 4))
            .unwrap()
            .wait();
        assert_eq!(baseline.executions, 400, "seed {seed}: full budget");

        let snapshot = round_checkpoint_at(seed, 4, 200);
        let bytes = snapshot.to_bytes();
        let restored = CampaignSnapshot::from_bytes(&bytes).expect("round snapshot parses");
        assert_eq!(restored, snapshot);

        // Resume at the original worker count and at a different one: the
        // round profile makes the lane count irrelevant to the result.
        for workers in [4usize, 2] {
            let compiled = compile_source(&contracts::crowdsale().source).unwrap();
            let service = CampaignService::new(2);
            let resumed = service
                .resume(compiled, round_config(seed, workers), &restored)
                .expect("round snapshot resumes at any worker count")
                .wait();
            assert_round_reports_identical(
                &baseline,
                &resumed,
                &format!("seed {seed} resumed at {workers} workers"),
            );
        }
    }
}

/// A round-mode snapshot only resumes under the round profile (and vice
/// versa): the determinism contract would silently break if a free-running
/// resume continued a round campaign.
#[test]
fn resume_rejects_a_determinism_profile_mismatch() {
    let snapshot = round_checkpoint_at(11, 4, 200);
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let service = CampaignService::new(1);
    match service.resume(compiled, crowdsale_config(11), &snapshot) {
        Err(SnapshotError::ProfileMismatch {
            snapshot: 1,
            config: 0,
        }) => {}
        other => panic!("expected ProfileMismatch, got {:?}", other.err()),
    }

    let free_snapshot = checkpoint_at(11, 150);
    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    match service.resume(compiled, round_config(11, 1), &free_snapshot) {
        Err(SnapshotError::ProfileMismatch {
            snapshot: 0,
            config: 1,
        }) => {}
        other => panic!("expected ProfileMismatch, got {:?}", other.err()),
    }
}

/// Many campaigns on one service: all complete, each is deterministic, and
/// polling reports sensible progress states throughout.
#[test]
fn concurrent_campaigns_on_one_pool_stay_deterministic() {
    let sources = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ];
    let service = CampaignService::new(2);
    let handles: Vec<_> = sources
        .iter()
        .map(|s| {
            let compiled = compile_source(s).unwrap();
            service
                .submit(compiled, FuzzerConfig::mufuzz(250).with_rng_seed(5))
                .unwrap()
        })
        .collect();
    let concurrent: Vec<CampaignReport> = handles.into_iter().map(|h| h.wait()).collect();

    // A fresh single-thread service produces the same reports: campaign
    // determinism is independent of pool size and co-tenants.
    let serial_service = CampaignService::new(1);
    for (source, parallel_report) in sources.iter().zip(&concurrent) {
        let compiled = compile_source(source).unwrap();
        let serial = serial_service
            .submit(compiled, FuzzerConfig::mufuzz(250).with_rng_seed(5))
            .unwrap()
            .wait();
        assert_eq!(serial.contract, parallel_report.contract);
        assert_eq!(serial.covered_edges, parallel_report.covered_edges);
        assert_eq!(serial.executions, parallel_report.executions);
        assert_eq!(serial.corpus_size, parallel_report.corpus_size);
        assert_eq!(
            serial.interesting_shapes,
            parallel_report.interesting_shapes
        );
    }
}
