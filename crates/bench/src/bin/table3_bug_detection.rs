//! Regenerates Table III: true positives / false negatives per bug class for
//! the static analyzers and fuzzers on the D2 vulnerability benchmark.
//!
//! Scale with `MUFUZZ_D2_PER_CLASS` (generated vulnerable contracts per bug
//! class in addition to the hand-written suite) and `MUFUZZ_EXECS`.

use mufuzz_bench::{bug_detection, env_param, table, workers_param};
use mufuzz_corpus::d2;
use mufuzz_oracles::BugClass;

fn main() {
    let per_class = env_param("MUFUZZ_D2_PER_CLASS", 2);
    let execs = env_param("MUFUZZ_EXECS", 500);

    let dataset = d2(per_class);
    println!(
        "Table III — bug detection on D2 ({} contracts, {} annotated bugs, {execs} executions per fuzzing campaign)",
        dataset.len(),
        dataset.total_annotations()
    );
    println!("Cells are TP / FN (FP); 'n/a' = class not supported by the tool.");
    println!();

    let result = bug_detection(&dataset, execs, 1, workers_param());

    let mut headers: Vec<&str> = vec!["Tool", "Kind"];
    let class_names: Vec<String> = BugClass::ALL
        .iter()
        .map(|c| c.abbrev().to_string())
        .collect();
    let class_refs: Vec<&str> = class_names.iter().map(|s| s.as_str()).collect();
    headers.extend(class_refs.iter().copied());
    headers.push("Total TP");
    headers.push("Total FN");

    let supported_by: std::collections::BTreeMap<&str, std::collections::BTreeSet<BugClass>> =
        mufuzz_baselines::all_static_analyzers()
            .iter()
            .map(|t| (t.name(), t.supported()))
            .collect();

    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|(tool, is_fuzzer, score)| {
            let mut row = vec![
                tool.clone(),
                if *is_fuzzer { "Fuzzer" } else { "Static" }.to_string(),
            ];
            for class in BugClass::ALL {
                let supported = *is_fuzzer
                    || supported_by
                        .get(tool.as_str())
                        .map(|s| s.contains(&class))
                        .unwrap_or(true);
                if !supported {
                    row.push("n/a".into());
                    continue;
                }
                let cs = score.class(class);
                row.push(format!(
                    "{}/{} ({})",
                    cs.true_positives, cs.false_negatives, cs.false_positives
                ));
            }
            row.push(score.total_tp().to_string());
            row.push(score.total_fn().to_string());
            row
        })
        .collect();

    print!("{}", table::render(&headers, &rows));
    println!();
    println!(
        "Expected shape (paper): MuFuzz reports the most true positives overall\n\
         (195 vs 136 for IR-Fuzz and 78 for Mythril in the paper) and the fewest\n\
         false negatives, with zero FN for UD/RE/US/SE/TO."
    );
}
