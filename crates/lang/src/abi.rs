//! Application binary interface: function selectors, parameter types and
//! calldata encoding/decoding.
//!
//! The fuzzer generates transaction inputs as ABI-encoded byte streams; the
//! mask-guided mutation then works directly on those bytes. The ABI layer
//! keeps encoding identical to Solidity's static-type encoding: a 4-byte
//! selector followed by one 32-byte word per parameter.

use crate::ast::{Contract, Function, Type};
use mufuzz_evm::{keccak256, Address, U256};

/// ABI-level parameter type (value types only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// 256-bit unsigned integer.
    Uint256,
    /// 160-bit address.
    Address,
    /// Boolean.
    Bool,
}

impl ParamType {
    /// Canonical name used in signatures.
    pub fn name(&self) -> &'static str {
        match self {
            ParamType::Uint256 => "uint256",
            ParamType::Address => "address",
            ParamType::Bool => "bool",
        }
    }

    /// Convert an AST type to an ABI parameter type, if it is a value type.
    pub fn from_ast(ty: &Type) -> Option<ParamType> {
        match ty {
            Type::Uint256 => Some(ParamType::Uint256),
            Type::Address => Some(ParamType::Address),
            Type::Bool => Some(ParamType::Bool),
            Type::Mapping(_, _) => None,
        }
    }
}

/// A typed argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbiValue {
    /// Unsigned integer.
    Uint(U256),
    /// Address.
    Address(Address),
    /// Boolean.
    Bool(bool),
}

impl AbiValue {
    /// Encode as a 32-byte word.
    pub fn to_word(&self) -> [u8; 32] {
        match self {
            AbiValue::Uint(v) => v.to_be_bytes(),
            AbiValue::Address(a) => a.to_u256().to_be_bytes(),
            AbiValue::Bool(b) => U256::from(*b).to_be_bytes(),
        }
    }

    /// Decode a word according to the parameter type.
    pub fn from_word(ty: ParamType, word: &[u8]) -> AbiValue {
        let value = U256::from_be_slice(word);
        match ty {
            ParamType::Uint256 => AbiValue::Uint(value),
            ParamType::Address => AbiValue::Address(Address::from_u256(value)),
            ParamType::Bool => AbiValue::Bool(!value.is_zero()),
        }
    }
}

/// ABI description of one externally callable function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionAbi {
    /// Function name.
    pub name: String,
    /// Parameter types in order.
    pub inputs: Vec<ParamType>,
    /// Whether the function accepts ether.
    pub payable: bool,
    /// 4-byte selector.
    pub selector: [u8; 4],
}

impl FunctionAbi {
    /// Build the ABI entry for an AST function.
    pub fn from_function(f: &Function) -> FunctionAbi {
        let inputs: Vec<ParamType> = f
            .params
            .iter()
            .filter_map(|p| ParamType::from_ast(&p.ty))
            .collect();
        FunctionAbi {
            name: f.name.clone(),
            inputs,
            payable: f.payable,
            selector: compute_selector(&f.signature()),
        }
    }

    /// Canonical signature string.
    pub fn signature(&self) -> String {
        let params: Vec<&str> = self.inputs.iter().map(|p| p.name()).collect();
        format!("{}({})", self.name, params.join(","))
    }

    /// ABI-encode a call to this function.
    pub fn encode_call(&self, args: &[AbiValue]) -> Vec<u8> {
        let mut data = self.selector.to_vec();
        for arg in args {
            data.extend_from_slice(&arg.to_word());
        }
        data
    }

    /// Decode calldata (after the selector) into typed values. Missing bytes
    /// decode as zero, mirroring EVM `CALLDATALOAD` semantics.
    pub fn decode_args(&self, calldata: &[u8]) -> Vec<AbiValue> {
        let body = if calldata.len() >= 4 {
            &calldata[4..]
        } else {
            &[]
        };
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let start = i * 32;
                let mut word = [0u8; 32];
                for (j, byte) in word.iter_mut().enumerate() {
                    *byte = body.get(start + j).copied().unwrap_or(0);
                }
                AbiValue::from_word(*ty, &word)
            })
            .collect()
    }

    /// Total calldata length for a call to this function.
    pub fn calldata_len(&self) -> usize {
        4 + 32 * self.inputs.len()
    }
}

/// Contract-level ABI: every dispatchable function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContractAbi {
    /// Functions reachable through the dispatcher.
    pub functions: Vec<FunctionAbi>,
}

impl ContractAbi {
    /// Build the ABI from an AST contract.
    pub fn from_contract(contract: &Contract) -> ContractAbi {
        ContractAbi {
            functions: contract
                .callable_functions()
                .filter(|f| !f.name.is_empty())
                .map(FunctionAbi::from_function)
                .collect(),
        }
    }

    /// Look up by name.
    pub fn function(&self, name: &str) -> Option<&FunctionAbi> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up by selector.
    pub fn by_selector(&self, selector: [u8; 4]) -> Option<&FunctionAbi> {
        self.functions.iter().find(|f| f.selector == selector)
    }
}

/// Compute the 4-byte selector of a canonical signature.
pub fn compute_selector(signature: &str) -> [u8; 4] {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Param, Visibility};

    fn sample_function() -> Function {
        Function {
            name: "invest".into(),
            params: vec![Param {
                name: "donations".into(),
                ty: Type::Uint256,
            }],
            visibility: Visibility::Public,
            payable: true,
            returns: None,
            body: vec![],
        }
    }

    #[test]
    fn selector_matches_signature_hash() {
        let abi = FunctionAbi::from_function(&sample_function());
        assert_eq!(abi.signature(), "invest(uint256)");
        assert_eq!(abi.selector, compute_selector("invest(uint256)"));
        // A well-known reference selector.
        assert_eq!(
            compute_selector("transfer(address,uint256)"),
            [0xa9, 0x05, 0x9c, 0xbb]
        );
    }

    #[test]
    fn encode_and_decode_roundtrip() {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Address, ParamType::Bool],
            payable: false,
            selector: [1, 2, 3, 4],
        };
        let args = vec![
            AbiValue::Uint(U256::from_u64(777)),
            AbiValue::Address(Address::from_low_u64(0xbeef)),
            AbiValue::Bool(true),
        ];
        let data = abi.encode_call(&args);
        assert_eq!(data.len(), abi.calldata_len());
        assert_eq!(&data[..4], &[1, 2, 3, 4]);
        assert_eq!(abi.decode_args(&data), args);
    }

    #[test]
    fn decode_tolerates_truncated_calldata() {
        let abi = FunctionAbi {
            name: "f".into(),
            inputs: vec![ParamType::Uint256, ParamType::Uint256],
            payable: false,
            selector: [0; 4],
        };
        let decoded = abi.decode_args(&[0, 0, 0, 0, 0xff]);
        assert_eq!(decoded.len(), 2);
        assert!(matches!(decoded[1], AbiValue::Uint(v) if v.is_zero()));
    }

    #[test]
    fn bool_decoding_is_nonzero_test() {
        let word_true = U256::from_u64(7).to_be_bytes();
        assert_eq!(
            AbiValue::from_word(ParamType::Bool, &word_true),
            AbiValue::Bool(true)
        );
        let word_false = U256::ZERO.to_be_bytes();
        assert_eq!(
            AbiValue::from_word(ParamType::Bool, &word_false),
            AbiValue::Bool(false)
        );
    }

    #[test]
    fn contract_abi_skips_internal_and_fallback_functions() {
        let mut contract = Contract {
            name: "C".into(),
            ..Default::default()
        };
        contract.functions.push(sample_function());
        contract.functions.push(Function {
            name: "hidden".into(),
            visibility: Visibility::Internal,
            params: vec![],
            payable: false,
            returns: None,
            body: vec![],
        });
        contract.functions.push(Function {
            name: String::new(),
            visibility: Visibility::Public,
            params: vec![],
            payable: true,
            returns: None,
            body: vec![],
        });
        let abi = ContractAbi::from_contract(&contract);
        assert_eq!(abi.functions.len(), 1);
        assert!(abi.function("invest").is_some());
        assert!(abi.by_selector(abi.functions[0].selector).is_some());
        assert!(abi.by_selector([9, 9, 9, 9]).is_none());
    }

    #[test]
    fn mapping_params_are_rejected() {
        assert_eq!(
            ParamType::from_ast(&Type::Mapping(
                Box::new(Type::Address),
                Box::new(Type::Uint256)
            )),
            None
        );
    }
}
