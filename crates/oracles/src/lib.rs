//! # mufuzz-oracles
//!
//! Trace-based bug oracles for the nine smart-contract vulnerability classes
//! MuFuzz targets (paper §IV-D and Table I), plus scoring utilities that
//! compare detector output against annotated ground truth the way Table III
//! does.
//!
//! The oracles operate on the instrumented [`mufuzz_evm::ExecutionTrace`]
//! produced by every transaction execution: taint-annotated branch decisions,
//! call events, arithmetic truncations, self-destructs and storage writes.
//!
//! ```
//! use mufuzz_oracles::{BugClass, CampaignMonitor};
//! use mufuzz_lang::compile_source;
//! use mufuzz_evm::{Account, Address, BlockEnv, Evm, Message, WorldState, U256, ether};
//!
//! let compiled = compile_source(
//!     "contract Lottery {
//!          uint256 wins;
//!          function play() public payable {
//!              if (block.timestamp % 2 == 0) { wins += 1; }
//!          }
//!      }",
//! ).unwrap();
//!
//! let sender = Address::from_low_u64(1);
//! let target = Address::from_low_u64(2);
//! let mut world = WorldState::new();
//! world.put_account(sender, Account::eoa(ether(10)));
//! let mut evm = Evm::new(&mut world, BlockEnv::default());
//! evm.deploy(sender, target, &compiled.constructor, compiled.runtime.clone(), U256::ZERO, vec![]);
//! let abi = compiled.abi.function("play").unwrap().clone();
//! let result = evm.execute(&Message::new(sender, target, U256::ZERO, abi.encode_call(&[])));
//!
//! let mut monitor = CampaignMonitor::new();
//! monitor.observe(&compiled, &result.trace);
//! monitor.finalize(&compiled, None);
//! assert!(monitor.detected_classes().contains(&BugClass::BlockDependency));
//! ```

#![warn(missing_docs)]

pub mod bugs;
pub mod monitor;
pub mod scoring;

pub use bugs::{BugClass, BugFinding};
pub use monitor::{CampaignMonitor, MonitorState};
pub use scoring::{score_contract, Annotation, ClassScore, DetectionScore};
