//! Fuzzer configuration.
//!
//! Knobs are grouped by concern: [`BudgetConfig`] bounds how long a campaign
//! runs, [`SchedulerConfig`] tunes how the seed scheduler spends that budget,
//! and the remaining [`FuzzerConfig`] fields select the paper's components
//! and the shape of the fuzzing world. Every knob keeps a chainable
//! `with_*`/`without_*` builder on [`FuzzerConfig`] itself, so driver code
//! never has to construct the sub-structs by hand.

/// Which reproducibility contract a campaign runs under.
///
/// * [`DeterminismProfile::FreeRunning`] (the default) is the historical
///   engine: lanes merge results as they finish, so only `workers == 1`
///   campaigns are bit-identical run to run. Fastest, but multi-worker
///   results depend on thread scheduling.
/// * [`DeterminismProfile::Round`] runs the campaign as barrier-synchronized
///   *rounds*: workers claim fixed-size mutant slots against a frozen view of
///   the corpus and coverage, and a round barrier applies admissions,
///   coverage merges, finding records and timeline points in stable slot
///   order. Every slot's RNG derives from `(rng_seed, round, slot)` — never
///   from which thread ran it — so **any worker count produces the
///   bit-identical report, corpus and findings**, and recorded findings can
///   be replayed from a [`crate::CampaignSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeterminismProfile {
    /// Lanes run freely; only `workers == 1` is reproducible.
    #[default]
    FreeRunning,
    /// Barrier-synchronized rounds; reproducible at any worker count.
    Round,
}

/// The campaign's stopping conditions: an execution budget and an optional
/// wall-clock budget (whichever is hit first stops the campaign).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetConfig {
    /// Maximum number of transaction-sequence executions.
    pub max_executions: usize,
    /// Optional wall-clock budget in milliseconds.
    pub time_budget_ms: Option<u64>,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            max_executions: 2_000,
            time_budget_ms: None,
        }
    }
}

/// Seed-scheduler tuning: the draw path, its resync cadence, corpus culling
/// and the base mutation energy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Draw seed batches from a per-worker corpus shard (a local mirror of
    /// the scheduling state, refreshed when the campaign's epoch counter
    /// moves) instead of under the shared state lock. Steady-state seed
    /// draws and energy allocation then touch no lock at all; the mutex is
    /// taken only for admissions, shard resyncs and timeline points. On by
    /// default. The shard resyncs before any draw that would observe a
    /// corpus change, so scheduling decisions — and, at `workers == 1`, the
    /// entire campaign — are bit-identical to the global draw path.
    pub sharded: bool,
    /// Force a shard resync every `n` draws even when the epoch counter has
    /// not moved, so locally accumulated selection counts flow back into the
    /// global corpus view at a bounded staleness. The amortised lock cost of
    /// the sharded scheduler is one acquisition per `n` draws.
    pub shard_resync_draws: usize,
    /// Corpus culling: every `n` admissions (counted inside the campaign
    /// state lock), drop seeds whose covered-edge set is a subset of another
    /// seed's with no better branch-distance score. `None` (the default)
    /// leaves the choice to the determinism profile: free-running campaigns
    /// run without culling — dropping seeds reshuffles corpus indices and
    /// thus the seed-selection RNG stream, which would break the
    /// `workers == 1` bit-identity contract — while round-mode campaigns
    /// enable it at [`DEFAULT_ROUND_CULL_INTERVAL`] (round mode keys every
    /// write-back by stable seed uid and freezes the draw view per round, so
    /// culling cannot perturb determinism there). Set an explicit interval
    /// with [`FuzzerConfig::with_corpus_culling`], or pin culling off with
    /// [`FuzzerConfig::without_corpus_culling`].
    pub corpus_cull_interval: Option<usize>,
    /// Base mutation energy per selected seed (number of mutants generated).
    pub base_energy: usize,
    /// Round mode: how many mutant slots each round schedules. Workers claim
    /// slots dynamically, so any `workers` count drains the same slots; a
    /// slot count divisible by the worker count leaves no barrier tail.
    pub round_slots: usize,
    /// Round mode: how many executions one slot performs against the round's
    /// frozen corpus/coverage view. `round_slots * round_batch` executions
    /// per round bound how stale the frozen view can get.
    pub round_batch: usize,
}

/// Culling cadence round mode defaults to when
/// [`SchedulerConfig::corpus_cull_interval`] is `None`.
pub const DEFAULT_ROUND_CULL_INTERVAL: usize = 32;

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            sharded: true,
            shard_resync_draws: 64,
            corpus_cull_interval: None,
            base_energy: 8,
            round_slots: 8,
            round_batch: 64,
        }
    }
}

/// Configuration of a fuzzing campaign.
///
/// The three `enable_*` switches correspond to the paper's three components
/// and drive the ablation study (Figure 7): sequence-aware mutation (§IV-A),
/// mask-guided seed mutation (§IV-B) and dynamic-adaptive energy adjustment
/// (§IV-C).
///
/// Configurations are built from [`FuzzerConfig::mufuzz`] (everything on)
/// with chained builders:
///
/// ```
/// use mufuzz::FuzzerConfig;
///
/// let config = FuzzerConfig::mufuzz(50_000)
///     .with_rng_seed(7)
///     .with_workers(4)
///     .with_corpus_culling(64);
/// assert_eq!(config.budget.max_executions, 50_000);
/// assert_eq!(config.workers, 4);
/// assert_eq!(config.scheduler.corpus_cull_interval, Some(64));
/// assert!(config.scheduler.sharded); // lock-free seed draws by default
/// // Ablations switch one component off at a time.
/// assert!(!config.without_mask_guidance().enable_mask_guidance);
/// ```
#[derive(Clone, Debug)]
pub struct FuzzerConfig {
    /// RNG seed: campaigns are fully deterministic for a given seed when
    /// `workers == 1`.
    pub rng_seed: u64,
    /// Number of worker lanes running the mutate→execute→evaluate loop.
    /// Defaults to the machine's available parallelism. With `workers == 1`
    /// the campaign is bit-for-bit identical to the historical
    /// single-threaded engine for a given `rng_seed`; with more workers the
    /// merge order of results depends on thread scheduling, so campaigns are
    /// no longer deterministic.
    pub workers: usize,
    /// Stopping conditions (execution and wall-clock budgets).
    pub budget: BudgetConfig,
    /// Seed-scheduler tuning (draw path, resync cadence, culling, energy).
    pub scheduler: SchedulerConfig,
    /// Reproducibility contract: free-running (fastest, `workers == 1` only)
    /// or barrier-synchronized rounds (bit-identical at any worker count).
    pub determinism: DeterminismProfile,
    /// Use the data-flow-derived transaction ordering and RAW-based sequence
    /// repetition. When disabled, sequences are randomly ordered.
    pub enable_sequence_aware: bool,
    /// Allow the RAW-based *repetition* of critical transactions within the
    /// planned ordering. Disabling this while keeping `enable_sequence_aware`
    /// models data-dependency fuzzers (ConFuzzius/Smartian) that order but
    /// never repeat transactions.
    pub enable_sequence_repetition: bool,
    /// Use the mutation mask (Algorithm 1/2). When disabled, every byte is
    /// mutable and mutation sites are chosen uniformly.
    pub enable_mask_guidance: bool,
    /// Use dynamic branch-weighted energy allocation (Algorithm 3). When
    /// disabled, every selected seed receives the same energy.
    pub enable_dynamic_energy: bool,
    /// Use branch-distance feedback for seed selection (on in MuFuzz and the
    /// sFuzz-style baselines).
    pub enable_branch_distance: bool,
    /// Harvest `PUSH` constants from the contract bytecode into the
    /// interesting-value pool (MuFuzz, ConFuzzius and IR-Fuzz style tools do
    /// this through their static/symbolic components; plain AFL-style fuzzers
    /// such as sFuzz use a fixed boundary-value pool only).
    pub harvest_constants: bool,
    /// Number of externally-owned sender accounts in the fuzzing world.
    pub sender_count: usize,
    /// How many initial seeds to generate from the sequence plan.
    pub initial_seeds: usize,
    /// How many coverage snapshots to keep for the coverage-over-time curve.
    pub timeline_points: usize,
    /// Install a re-entrant attacker account in the fuzzing world so the
    /// reentrancy oracle can observe actual re-entrant executions.
    pub install_attacker: bool,
    /// Install a rejecting sink account so failing external calls can be
    /// observed (exercises the unhandled-exception oracle).
    pub install_rejecting_sink: bool,
    /// Execute through the block-lowered interpreter fast path (per-block
    /// static gas and stack validation, fused superinstructions). On by
    /// default; execution is bit-identical either way, so the knob exists
    /// for the three-way decoder differential and A/B throughput
    /// comparisons. Maps to `EvmConfig::block_lowering`.
    pub block_lowering: bool,
    /// Dispatch block units through pre-resolved handler function pointers
    /// (direct threading) instead of the two-level `match`. On by default;
    /// only effective when [`block_lowering`](Self::block_lowering) is on.
    /// Execution is bit-identical either way, so the knob exists for the
    /// four-way decoder differential and dispatch A/B comparisons. Maps to
    /// `EvmConfig::direct_threaded`.
    pub direct_threaded: bool,
}

impl Default for FuzzerConfig {
    fn default() -> Self {
        FuzzerConfig {
            rng_seed: 0x5EED,
            workers: default_workers(),
            budget: BudgetConfig::default(),
            scheduler: SchedulerConfig::default(),
            determinism: DeterminismProfile::FreeRunning,
            enable_sequence_aware: true,
            enable_sequence_repetition: true,
            enable_mask_guidance: true,
            enable_dynamic_energy: true,
            enable_branch_distance: true,
            harvest_constants: true,
            sender_count: 3,
            initial_seeds: 8,
            timeline_points: 64,
            install_attacker: true,
            install_rejecting_sink: true,
            block_lowering: true,
            direct_threaded: true,
        }
    }
}

impl FuzzerConfig {
    /// Full MuFuzz configuration with a given budget.
    pub fn mufuzz(max_executions: usize) -> Self {
        FuzzerConfig {
            budget: BudgetConfig {
                max_executions,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// The execution budget (shorthand for `self.budget.max_executions`).
    pub fn max_executions(&self) -> usize {
        self.budget.max_executions
    }

    /// The wall-clock budget (shorthand for `self.budget.time_budget_ms`).
    pub fn time_budget_ms(&self) -> Option<u64> {
        self.budget.time_budget_ms
    }

    /// Whether the sharded seed scheduler is on (shorthand for
    /// `self.scheduler.sharded`).
    pub fn sharded_scheduler(&self) -> bool {
        self.scheduler.sharded
    }

    /// Whether the campaign runs under the reproducible round profile.
    pub fn round_mode(&self) -> bool {
        self.determinism == DeterminismProfile::Round
    }

    /// The corpus-culling interval actually in effect: an explicit setting
    /// wins; otherwise round mode culls at [`DEFAULT_ROUND_CULL_INTERVAL`]
    /// and free-running leaves culling off (see
    /// [`SchedulerConfig::corpus_cull_interval`]).
    pub fn effective_cull_interval(&self) -> Option<usize> {
        match self.scheduler.corpus_cull_interval {
            Some(every) => Some(every),
            None if self.round_mode() => Some(DEFAULT_ROUND_CULL_INTERVAL),
            None => None,
        }
    }

    /// Ablation: disable the sequence-aware mutation only.
    pub fn without_sequence_aware(mut self) -> Self {
        self.enable_sequence_aware = false;
        self
    }

    /// Keep the data-flow ordering but disable transaction repetition
    /// (models ConFuzzius/Smartian-style sequence handling).
    pub fn without_sequence_repetition(mut self) -> Self {
        self.enable_sequence_repetition = false;
        self
    }

    /// Ablation: disable the mask-guided seed mutation only.
    pub fn without_mask_guidance(mut self) -> Self {
        self.enable_mask_guidance = false;
        self
    }

    /// Ablation: disable the dynamic energy adjustment only.
    pub fn without_dynamic_energy(mut self) -> Self {
        self.enable_dynamic_energy = false;
        self
    }

    /// Set the RNG seed (builder style).
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Set the wall-clock budget (builder style).
    pub fn with_time_budget_ms(mut self, ms: u64) -> Self {
        self.budget.time_budget_ms = Some(ms);
        self
    }

    /// Set the number of worker lanes (builder style). Clamped to at
    /// least one; `workers == 1` keeps campaigns deterministic.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Choose the seed-draw path (builder style): `true` (the default) draws
    /// from per-worker corpus shards without taking the state lock, `false`
    /// restores the historical global draw under the mutex. Both paths make
    /// identical scheduling decisions; the knob exists for the equivalence
    /// tests and for A/B throughput comparisons.
    pub fn with_sharded_scheduler(mut self, sharded: bool) -> Self {
        self.scheduler.sharded = sharded;
        self
    }

    /// Choose the interpreter tier (builder style): `true` (the default)
    /// executes through the block-lowered fast path, `false` restores
    /// instruction-at-a-time billing over the pre-decoded stream. Both
    /// tiers halt, trace and bill identically; the knob exists for the
    /// decoder differential suite and A/B throughput comparisons.
    pub fn with_block_lowering(mut self, block_lowering: bool) -> Self {
        self.block_lowering = block_lowering;
        self
    }

    /// Choose the block-tier dispatch strategy (builder style): `true` (the
    /// default) calls through per-unit handler pointers resolved at lowering
    /// time, `false` restores the `match`-based dispatcher. No effect unless
    /// block lowering is on; both strategies halt, trace and bill
    /// identically, so the knob exists for the decoder differential suite
    /// and dispatch A/B comparisons.
    pub fn with_direct_threaded(mut self, direct_threaded: bool) -> Self {
        self.direct_threaded = direct_threaded;
        self
    }

    /// Set the forced shard-resync interval in draws (builder style).
    /// Clamped to at least one.
    pub fn with_shard_resync_draws(mut self, draws: usize) -> Self {
        self.scheduler.shard_resync_draws = draws.max(1);
        self
    }

    /// Enable periodic corpus culling (builder style): every `admissions`
    /// corpus admissions, dominated seeds — covered edges a subset of another
    /// seed's, branch-distance score no better — are dropped. Clamped to at
    /// least one. See [`SchedulerConfig::corpus_cull_interval`] for why this
    /// is off by default.
    pub fn with_corpus_culling(mut self, admissions: usize) -> Self {
        self.scheduler.corpus_cull_interval = Some(admissions.max(1));
        self
    }

    /// Pin corpus culling off (builder style), overriding the round-mode
    /// default. Implemented as an explicit interval that can never elapse,
    /// so [`FuzzerConfig::effective_cull_interval`] still reports the
    /// explicit choice.
    pub fn without_corpus_culling(mut self) -> Self {
        self.scheduler.corpus_cull_interval = Some(usize::MAX);
        self
    }

    /// Select the determinism profile (builder style).
    pub fn with_determinism(mut self, profile: DeterminismProfile) -> Self {
        self.determinism = profile;
        self
    }

    /// Run the campaign in barrier-synchronized round mode (builder style):
    /// bit-identical reports, corpus and findings at any worker count. See
    /// [`DeterminismProfile::Round`].
    pub fn with_round_mode(mut self) -> Self {
        self.determinism = DeterminismProfile::Round;
        self
    }

    /// Set how many mutant slots each round schedules (builder style).
    /// Clamped to at least one.
    pub fn with_round_slots(mut self, slots: usize) -> Self {
        self.scheduler.round_slots = slots.max(1);
        self
    }

    /// Set how many executions one round slot performs (builder style).
    /// Clamped to at least one.
    pub fn with_round_batch(mut self, executions: usize) -> Self {
        self.scheduler.round_batch = executions.max(1);
        self
    }
}

/// The default worker count: the machine's available parallelism (1 when it
/// cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_components() {
        let cfg = FuzzerConfig::default();
        assert!(cfg.enable_sequence_aware);
        assert!(cfg.enable_mask_guidance);
        assert!(cfg.enable_dynamic_energy);
        assert!(cfg.enable_branch_distance);
    }

    #[test]
    fn ablation_builders_disable_one_component_each() {
        let a = FuzzerConfig::mufuzz(100).without_sequence_aware();
        assert!(!a.enable_sequence_aware && a.enable_mask_guidance && a.enable_dynamic_energy);
        let b = FuzzerConfig::mufuzz(100).without_mask_guidance();
        assert!(b.enable_sequence_aware && !b.enable_mask_guidance && b.enable_dynamic_energy);
        let c = FuzzerConfig::mufuzz(100).without_dynamic_energy();
        assert!(c.enable_sequence_aware && c.enable_mask_guidance && !c.enable_dynamic_energy);
    }

    #[test]
    fn builders_chain() {
        let cfg = FuzzerConfig::mufuzz(500)
            .with_rng_seed(42)
            .with_time_budget_ms(1_000)
            .with_workers(4);
        assert_eq!(cfg.budget.max_executions, 500);
        assert_eq!(cfg.max_executions(), 500);
        assert_eq!(cfg.rng_seed, 42);
        assert_eq!(cfg.budget.time_budget_ms, Some(1_000));
        assert_eq!(cfg.time_budget_ms(), Some(1_000));
        assert_eq!(cfg.workers, 4);
    }

    #[test]
    fn worker_count_defaults_to_parallelism_and_clamps_to_one() {
        assert_eq!(FuzzerConfig::default().workers, default_workers());
        assert!(default_workers() >= 1);
        assert_eq!(FuzzerConfig::mufuzz(10).with_workers(0).workers, 1);
    }

    #[test]
    fn sharded_scheduler_defaults_on_and_toggles() {
        let cfg = FuzzerConfig::default();
        assert!(cfg.scheduler.sharded);
        assert_eq!(cfg.scheduler.shard_resync_draws, 64);
        let off = FuzzerConfig::mufuzz(10).with_sharded_scheduler(false);
        assert!(!off.sharded_scheduler());
        let on = off.with_sharded_scheduler(true);
        assert!(on.scheduler.sharded);
        assert_eq!(
            FuzzerConfig::mufuzz(10)
                .with_shard_resync_draws(0)
                .scheduler
                .shard_resync_draws,
            1
        );
    }

    #[test]
    fn block_lowering_defaults_on_and_toggles() {
        assert!(FuzzerConfig::default().block_lowering);
        let off = FuzzerConfig::mufuzz(10).with_block_lowering(false);
        assert!(!off.block_lowering);
        assert!(off.with_block_lowering(true).block_lowering);
    }

    #[test]
    fn direct_threaded_defaults_on_and_toggles() {
        assert!(FuzzerConfig::default().direct_threaded);
        let off = FuzzerConfig::mufuzz(10).with_direct_threaded(false);
        assert!(!off.direct_threaded);
        assert!(off.with_direct_threaded(true).direct_threaded);
    }

    #[test]
    fn corpus_culling_is_opt_in_and_clamps_to_one() {
        assert_eq!(FuzzerConfig::default().scheduler.corpus_cull_interval, None);
        let cfg = FuzzerConfig::mufuzz(10).with_corpus_culling(0);
        assert_eq!(cfg.scheduler.corpus_cull_interval, Some(1));
        let cfg = FuzzerConfig::mufuzz(10).with_corpus_culling(32);
        assert_eq!(cfg.scheduler.corpus_cull_interval, Some(32));
    }

    #[test]
    fn determinism_defaults_free_running_and_round_mode_toggles() {
        let cfg = FuzzerConfig::default();
        assert_eq!(cfg.determinism, DeterminismProfile::FreeRunning);
        assert!(!cfg.round_mode());
        let round = FuzzerConfig::mufuzz(10).with_round_mode();
        assert!(round.round_mode());
        let back = round.with_determinism(DeterminismProfile::FreeRunning);
        assert!(!back.round_mode());
    }

    #[test]
    fn round_geometry_defaults_and_clamps() {
        let cfg = FuzzerConfig::default();
        assert_eq!(cfg.scheduler.round_slots, 8);
        assert_eq!(cfg.scheduler.round_batch, 64);
        let cfg = FuzzerConfig::mufuzz(10)
            .with_round_slots(0)
            .with_round_batch(0);
        assert_eq!(cfg.scheduler.round_slots, 1);
        assert_eq!(cfg.scheduler.round_batch, 1);
        let cfg = FuzzerConfig::mufuzz(10)
            .with_round_slots(3)
            .with_round_batch(16);
        assert_eq!(cfg.scheduler.round_slots, 3);
        assert_eq!(cfg.scheduler.round_batch, 16);
    }

    #[test]
    fn effective_cull_interval_is_profile_aware() {
        // Free-running, unset: culling stays off.
        assert_eq!(FuzzerConfig::default().effective_cull_interval(), None);
        // Round mode, unset: culling defaults on.
        assert_eq!(
            FuzzerConfig::mufuzz(10)
                .with_round_mode()
                .effective_cull_interval(),
            Some(DEFAULT_ROUND_CULL_INTERVAL)
        );
        // An explicit interval wins in either profile.
        assert_eq!(
            FuzzerConfig::mufuzz(10)
                .with_round_mode()
                .with_corpus_culling(7)
                .effective_cull_interval(),
            Some(7)
        );
        // `without_corpus_culling` pins the never-elapsing sentinel even
        // under round mode.
        assert_eq!(
            FuzzerConfig::mufuzz(10)
                .with_round_mode()
                .without_corpus_culling()
                .effective_cull_interval(),
            Some(usize::MAX)
        );
    }
}
