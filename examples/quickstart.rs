//! Quickstart: compile a small contract from source, fuzz it with MuFuzz and
//! print the campaign report.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use mufuzz::{Fuzzer, FuzzerConfig};
use mufuzz_lang::compile_source;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn main() {
    // 1. Compile: source -> bytecode + ABI + AST (the three artefacts MuFuzz
    //    consumes).
    let compiled = compile_source(SOURCE).expect("contract should compile");
    println!(
        "compiled `{}`: {} instructions, {} public functions",
        compiled.name,
        compiled.instruction_count(),
        compiled.abi.functions.len()
    );

    // 2. Fuzz with the full MuFuzz configuration for 1,000 sequence
    //    executions. The campaign runs on `workers` threads (default: the
    //    machine's available parallelism; `MUFUZZ_WORKERS` overrides it —
    //    pin it to 1 for a deterministic run).
    let mut config = FuzzerConfig::mufuzz(1_000).with_rng_seed(42);
    if let Some(workers) = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        config = config.with_workers(workers);
    }
    let mut fuzzer = Fuzzer::new(compiled, config).expect("deployment should succeed");
    let report = fuzzer.run();

    // 3. Inspect the results.
    println!(
        "coverage: {:.1}% ({} of {} branch edges) after {} executions in {} ms \
         ({:.0} execs/sec on {} worker(s))",
        report.coverage_percent(),
        report.covered_edges,
        report.total_edges,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.workers
    );
    println!("corpus size: {} seeds", report.corpus_size);
    if report.findings.is_empty() {
        println!("no vulnerabilities reported");
    } else {
        println!("findings:");
        for finding in &report.findings {
            println!("  - {finding}");
        }
    }
}
