//! # mufuzz-evm
//!
//! A from-scratch, fully instrumented Ethereum Virtual Machine substrate for
//! the MuFuzz reproduction.
//!
//! The crate provides:
//!
//! * [`U256`] — 256-bit arithmetic with explicit overflow reporting,
//! * [`keccak256`] — Keccak-256 (function selectors, mapping slots, `SHA3`),
//! * [`Opcode`] / [`disassemble`] — the instruction set and a disassembler,
//! * [`WorldState`] / [`Account`] — accounts, balances and persistent storage,
//! * [`Evm`] — the interpreter, producing an [`ExecutionTrace`] per
//!   transaction with branch decisions, coverage edges, taint-annotated
//!   events and everything the bug oracles need.
//!
//! ## Example
//!
//! ```
//! use mufuzz_evm::{Account, Address, BlockEnv, Evm, Message, U256, WorldState};
//!
//! // PUSH1 2, PUSH1 40, ADD, PUSH1 0, MSTORE, PUSH1 32, PUSH1 0, RETURN
//! let code = vec![0x60, 0x02, 0x60, 0x28, 0x01, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3];
//! let sender = Address::from_low_u64(1);
//! let contract = Address::from_low_u64(0x42);
//!
//! let mut world = WorldState::new();
//! world.put_account(sender, Account::eoa(U256::from_u64(1_000_000)));
//! world.put_account(contract, Account::contract(code, U256::ZERO));
//!
//! let mut evm = Evm::new(&mut world, BlockEnv::default());
//! let result = evm.execute(&Message::new(sender, contract, U256::ZERO, vec![]));
//! assert!(result.success);
//! assert_eq!(U256::from_be_slice(&result.output), U256::from_u64(42));
//! ```

#![warn(missing_docs)]

pub mod env;
pub mod gas;
pub mod interpreter;
pub mod keccak;
pub mod opcode;
pub mod program;
pub mod state;
mod threaded;
pub mod trace;
pub mod types;
pub mod u256;

pub use env::{BlockEnv, ExecutionResult, Message};
pub use gas::{static_gas, AccessCheckpoint, AccessSets};
pub use interpreter::{Evm, EvmConfig, ExecFrame};
pub use keccak::{keccak256, selector};
pub use opcode::{disassemble, Instruction, Opcode};
pub use program::{
    BlockInfo, BlockProgram, BlockUnit, DecodedInstr, DecodedProgram, Fused, ProgramCache,
};
pub use state::{Account, HostBehaviour, WorldState};
pub use trace::{
    ArithEvent, BranchEdge, BranchRecord, CallEvent, CallKind, CmpKind, Comparison,
    ConformanceEvent, ExecutionTrace, HaltReason, SelfDestructEvent, StorageWrite, Taint,
};
pub use types::{ether, finney, Address};
pub use u256::U256;
