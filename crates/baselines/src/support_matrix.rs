//! The bug-class support matrix of Table I.
//!
//! This is reference data used to regenerate the paper's Table I: for each of
//! the 27 surveyed tools, its category, public availability and the bug
//! classes it supports.

use mufuzz_oracles::BugClass;

/// Tool category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolKind {
    /// Dynamic fuzzing tool.
    Fuzzer,
    /// Static analyzer / symbolic executor / verifier.
    StaticAnalyzer,
}

impl ToolKind {
    /// Label used in the table.
    pub fn label(&self) -> &'static str {
        match self {
            ToolKind::Fuzzer => "Fuzzer",
            ToolKind::StaticAnalyzer => "Static Analyzer",
        }
    }
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct ToolSupport {
    /// Tool name.
    pub name: &'static str,
    /// Tool category.
    pub kind: ToolKind,
    /// Whether the tool is publicly available.
    pub public: bool,
    /// Supported bug classes.
    pub supported: Vec<BugClass>,
}

impl ToolSupport {
    /// Whether the tool supports a class.
    pub fn supports(&self, class: BugClass) -> bool {
        self.supported.contains(&class)
    }
}

/// The full Table I matrix (27 surveyed tools) plus MuFuzz itself.
pub fn table1_matrix() -> Vec<ToolSupport> {
    use BugClass::*;
    let row = |name, kind, public, supported: &[BugClass]| ToolSupport {
        name,
        kind,
        public,
        supported: supported.to_vec(),
    };
    vec![
        row(
            "ContractFuzzer",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                Reentrancy,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "ContraMaster",
            ToolKind::Fuzzer,
            true,
            &[IntegerOverflow, Reentrancy, UnhandledException],
        ),
        row("Echidna", ToolKind::Fuzzer, true, &[UnhandledException]),
        row("Reguard", ToolKind::Fuzzer, false, &[Reentrancy]),
        row(
            "Harvey",
            ToolKind::Fuzzer,
            false,
            &[IntegerOverflow, Reentrancy, UnhandledException],
        ),
        row(
            "sFuzz",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                IntegerOverflow,
                Reentrancy,
                UnhandledException,
            ],
        ),
        row(
            "IR-Fuzz",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                IntegerOverflow,
                Reentrancy,
                StrictEtherEquality,
                UnhandledException,
            ],
        ),
        row(
            "Smartian",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                IntegerOverflow,
                Reentrancy,
                UnprotectedSelfDestruct,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "ILF",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                UnprotectedSelfDestruct,
                UnhandledException,
            ],
        ),
        row(
            "ConFuzzius",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                IntegerOverflow,
                Reentrancy,
                UnprotectedSelfDestruct,
                UnhandledException,
            ],
        ),
        row(
            "xFuzz",
            ToolKind::Fuzzer,
            true,
            &[UnprotectedDelegatecall, Reentrancy, TxOriginUse],
        ),
        row(
            "RLF",
            ToolKind::Fuzzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                UnprotectedSelfDestruct,
                UnhandledException,
            ],
        ),
        row(
            "Oyente",
            ToolKind::StaticAnalyzer,
            true,
            &[BlockDependency, IntegerOverflow, Reentrancy],
        ),
        row(
            "Osiris",
            ToolKind::StaticAnalyzer,
            true,
            &[BlockDependency, IntegerOverflow, Reentrancy],
        ),
        row(
            "Mythril",
            ToolKind::StaticAnalyzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                IntegerOverflow,
                Reentrancy,
                UnprotectedSelfDestruct,
                StrictEtherEquality,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "Slither",
            ToolKind::StaticAnalyzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                EtherFreezing,
                Reentrancy,
                UnprotectedSelfDestruct,
                StrictEtherEquality,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "Securify1.0",
            ToolKind::StaticAnalyzer,
            true,
            &[Reentrancy, UnhandledException],
        ),
        row(
            "Manticore",
            ToolKind::StaticAnalyzer,
            true,
            &[
                BlockDependency,
                UnprotectedDelegatecall,
                IntegerOverflow,
                Reentrancy,
                UnprotectedSelfDestruct,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "Maian",
            ToolKind::StaticAnalyzer,
            true,
            &[EtherFreezing, UnprotectedSelfDestruct],
        ),
        row(
            "SmartCheck",
            ToolKind::StaticAnalyzer,
            true,
            &[
                BlockDependency,
                EtherFreezing,
                IntegerOverflow,
                Reentrancy,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "Zeus",
            ToolKind::StaticAnalyzer,
            false,
            &[
                BlockDependency,
                IntegerOverflow,
                Reentrancy,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row(
            "VeriSmart",
            ToolKind::StaticAnalyzer,
            true,
            &[IntegerOverflow],
        ),
        row(
            "Vandal",
            ToolKind::StaticAnalyzer,
            true,
            &[
                Reentrancy,
                UnprotectedSelfDestruct,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row("Sereum", ToolKind::StaticAnalyzer, false, &[Reentrancy]),
        row(
            "teEther",
            ToolKind::StaticAnalyzer,
            true,
            &[UnprotectedDelegatecall, UnprotectedSelfDestruct],
        ),
        row("Sailfish", ToolKind::StaticAnalyzer, true, &[Reentrancy]),
        row(
            "DefectChecker",
            ToolKind::StaticAnalyzer,
            true,
            &[
                BlockDependency,
                EtherFreezing,
                Reentrancy,
                TxOriginUse,
                UnhandledException,
            ],
        ),
        row("MuFuzz", ToolKind::Fuzzer, true, &BugClass::ALL),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_all_surveyed_tools_plus_mufuzz() {
        let matrix = table1_matrix();
        assert_eq!(matrix.len(), 28);
        assert!(matrix.iter().any(|t| t.name == "MuFuzz"));
        let fuzzers = matrix.iter().filter(|t| t.kind == ToolKind::Fuzzer).count();
        assert_eq!(fuzzers, 13);
    }

    #[test]
    fn mufuzz_supports_all_nine_classes() {
        let matrix = table1_matrix();
        let mufuzz = matrix.iter().find(|t| t.name == "MuFuzz").unwrap();
        for class in BugClass::ALL {
            assert!(mufuzz.supports(class));
        }
    }

    #[test]
    fn selected_rows_match_the_paper() {
        let matrix = table1_matrix();
        let echidna = matrix.iter().find(|t| t.name == "Echidna").unwrap();
        assert_eq!(echidna.supported.len(), 1);
        assert!(echidna.supports(BugClass::UnhandledException));
        let oyente = matrix.iter().find(|t| t.name == "Oyente").unwrap();
        assert!(oyente.supports(BugClass::IntegerOverflow));
        assert!(!oyente.supports(BugClass::UnprotectedDelegatecall));
        let reguard = matrix.iter().find(|t| t.name == "Reguard").unwrap();
        assert!(!reguard.public);
    }

    #[test]
    fn names_are_unique() {
        let matrix = table1_matrix();
        let names: std::collections::BTreeSet<&str> = matrix.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), matrix.len());
    }
}
