//! The execution harness: deploys a compiled contract into a synthetic world
//! and replays transaction sequences against a snapshot of that world.
//!
//! The world contains a pool of funded senders, an optional re-entrant
//! attacker account (so the reentrancy oracle can observe actual re-entrant
//! executions) and an optional rejecting sink (so failing external calls are
//! observable). Every sequence execution starts from the freshly deployed
//! state, which matches how the paper's fuzzer replays sequences.

use crate::config::FuzzerConfig;
use crate::input::{Sequence, TxInput};
use mufuzz_analysis::EdgeIndex;
use mufuzz_evm::{
    ether, Account, Address, BlockEnv, BranchEdge, DecodedProgram, Evm, ExecFrame, ExecutionTrace,
    HostBehaviour, Message, ProgramCache, WorldState, U256,
};
use mufuzz_lang::CompiledContract;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Errors raised while setting up or driving the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessError(pub String);

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "harness error: {}", self.0)
    }
}

impl std::error::Error for HarnessError {}

/// Upper bound applied to mutated `msg.value` fields so transactions do not
/// trivially fail the balance check.
fn value_cap() -> U256 {
    ether(1_000)
}

/// The outcome of executing one transaction sequence.
#[derive(Clone, Debug)]
pub struct SequenceOutcome {
    /// Per-transaction execution traces (same order as the sequence).
    pub traces: Vec<ExecutionTrace>,
    /// Union of branch edges covered by all transactions.
    pub covered_edges: BTreeSet<BranchEdge>,
    /// The same edges as dense ids from the harness's [`EdgeIndex`], sorted
    /// ascending. This is what the campaign merges into its atomic coverage
    /// bitmap without taking any lock. Edges the index cannot number (none in
    /// practice) appear only in `covered_edges`, so a length mismatch between
    /// the two collections flags them.
    pub covered_edge_ids: Vec<u32>,
    /// World state after the whole sequence.
    pub final_world: WorldState,
    /// Number of transactions that completed successfully.
    pub successes: usize,
}

impl SequenceOutcome {
    /// True if at least one transaction executed successfully.
    pub fn any_success(&self) -> bool {
        self.successes > 0
    }
}

/// A deployed contract plus the synthetic world used for fuzzing.
#[derive(Clone, Debug)]
pub struct ContractHarness {
    /// The compiled contract under test.
    pub compiled: CompiledContract,
    /// Address the contract is deployed at.
    pub contract_address: Address,
    /// Funded sender pool (the last entry is the attacker when installed).
    pub senders: Vec<Address>,
    /// Re-entrant attacker account, when installed.
    pub attacker: Option<Address>,
    /// Rejecting sink account, when installed.
    pub sink: Option<Address>,
    /// Dense numbering of the contract's branch edges, assigned once at
    /// harness build time and shared by every clone of the harness (workers
    /// clone the harness, so ids agree across threads by construction).
    edge_index: Arc<EdgeIndex>,
    /// The runtime bytecode pre-decoded once at build time; shared by every
    /// clone and handed to the interpreter as a [`ProgramCache`] so
    /// executions skip byte-at-a-time decoding entirely.
    programs: Arc<ProgramCache>,
    /// Whether executions run through the block-lowered interpreter tier
    /// (mirrors [`FuzzerConfig::block_lowering`]).
    block_lowering: bool,
    /// Whether the block tier dispatches through pre-resolved handler
    /// pointers (mirrors [`FuzzerConfig::direct_threaded`]).
    direct_threaded: bool,
    base_world: WorldState,
    base_block: BlockEnv,
}

impl ContractHarness {
    /// Deploy the contract and build the fuzzing world.
    pub fn new(compiled: CompiledContract, config: &FuzzerConfig) -> Result<Self, HarnessError> {
        let contract_address = Address::from_low_u64(0xC0DE);
        let deployer = Address::from_low_u64(0x1000);
        let mut senders = vec![deployer];
        for i in 1..config.sender_count.max(1) {
            senders.push(Address::from_low_u64(0x1000 + i as u64));
        }

        let mut world = WorldState::new();
        for sender in &senders {
            world.put_account(*sender, Account::eoa(ether(1_000_000)));
        }

        let attacker = if config.install_attacker {
            let attacker = Address::from_low_u64(0xA77A);
            world.put_account(
                attacker,
                Account {
                    balance: ether(1_000_000),
                    behaviour: HostBehaviour::ReentrantAttacker {
                        callback_data: vec![],
                        max_depth: 3,
                    },
                    ..Default::default()
                },
            );
            senders.push(attacker);
            Some(attacker)
        } else {
            None
        };

        let sink = if config.install_rejecting_sink {
            let sink = Address::from_low_u64(0x5117);
            world.put_account(
                sink,
                Account {
                    behaviour: HostBehaviour::RejectingSink,
                    ..Default::default()
                },
            );
            Some(sink)
        } else {
            None
        };

        let base_block = BlockEnv::default();
        let mut evm = Evm::new(&mut world, base_block);
        let deployment = evm.deploy(
            deployer,
            contract_address,
            &compiled.constructor,
            compiled.runtime.clone(),
            U256::ZERO,
            vec![],
        );
        if !deployment.success {
            return Err(HarnessError(format!(
                "constructor execution failed: {:?}",
                deployment.halt
            )));
        }

        // Decode and block-lower the runtime bytecode once; the lowered
        // program feeds both the interpreter fast path (via the program
        // cache, keyed on the deployed code blob) and the dense edge
        // numbering — block-granular, provably identical to the per-`JUMPI`
        // numbering — with no re-scan.
        let runtime_code = world.code(contract_address);
        let program = Arc::new(DecodedProgram::decode(&runtime_code));
        let mut programs = ProgramCache::new();
        programs.insert(Arc::clone(&runtime_code), program);
        let edge_index = Arc::new(EdgeIndex::from_blocks(
            programs
                .get_block(&runtime_code)
                .expect("runtime program was just inserted"),
            contract_address,
        ));

        // Freeze the post-constructor world: every sequence execution
        // restores this constructor snapshot with one Arc clone instead of
        // copying (or re-deploying) the whole world.
        world.freeze();

        Ok(ContractHarness {
            compiled,
            contract_address,
            senders,
            attacker,
            sink,
            edge_index,
            programs: Arc::new(programs),
            block_lowering: config.block_lowering,
            direct_threaded: config.direct_threaded,
            base_world: world,
            base_block,
        })
    }

    /// The dense branch-edge numbering of the contract under test.
    pub fn edge_index(&self) -> &EdgeIndex {
        &self.edge_index
    }

    /// The shared program cache (decoded + block-lowered runtime bytecode).
    /// Clones of a harness hand out the same cache, so decoding and lowering
    /// happen exactly once per deployment.
    pub fn programs(&self) -> &Arc<ProgramCache> {
        &self.programs
    }

    /// Addresses worth injecting into address-typed arguments.
    pub fn interesting_addresses(&self) -> Vec<Address> {
        let mut out = self.senders.clone();
        out.push(self.contract_address);
        if let Some(s) = self.sink {
            out.push(s);
        }
        out.push(Address::ZERO);
        out
    }

    /// Execute a transaction sequence against a fresh snapshot of the
    /// deployed world.
    ///
    /// Allocates a transient [`ExecFrame`]; campaign workers should prefer
    /// [`ContractHarness::execute_sequence_with`] with a long-lived frame so
    /// interpreter scratch buffers are reused across executions.
    pub fn execute_sequence(&self, sequence: &Sequence) -> SequenceOutcome {
        self.execute_sequence_with(sequence, &mut ExecFrame::new())
    }

    /// Like [`ContractHarness::execute_sequence`], reusing the caller's
    /// [`ExecFrame`] scratch buffers (operand stacks, memory, trace capacity
    /// hints) instead of allocating fresh ones per execution.
    pub fn execute_sequence_with(
        &self,
        sequence: &Sequence,
        frame: &mut ExecFrame,
    ) -> SequenceOutcome {
        let mut world = self.base_world.snapshot();
        let mut block = self.base_block;
        let mut traces = Vec::with_capacity(sequence.len());
        let mut covered = BTreeSet::new();
        let mut successes = 0usize;

        for tx in &sequence.txs {
            block.advance();
            let trace = self.execute_tx(&mut world, block, tx, frame);
            if trace.success() {
                successes += 1;
            }
            trace.merge_edges_into(&mut covered);
            traces.push(trace);
        }

        // Dense ids for the atomic coverage bitmap. `covered` iterates in
        // ascending (address, pc, taken) order, which the index maps to
        // ascending ids for the single contract under test; the defensive
        // sort is a no-op then and keeps the contract documented on
        // `covered_edge_ids` honest if that ever changes.
        let mut covered_edge_ids: Vec<u32> = covered
            .iter()
            .filter_map(|edge| self.edge_index.id_of(edge))
            .collect();
        covered_edge_ids.sort_unstable();

        SequenceOutcome {
            traces,
            covered_edges: covered,
            covered_edge_ids,
            final_world: world,
            successes,
        }
    }

    /// Execute one transaction against the given world.
    fn execute_tx(
        &self,
        world: &mut WorldState,
        block: BlockEnv,
        tx: &TxInput,
        frame: &mut ExecFrame,
    ) -> ExecutionTrace {
        let Some(abi) = self.compiled.abi.function(&tx.function) else {
            // Unknown function (e.g. after a corpus merge): skip by returning
            // an empty trace.
            return ExecutionTrace::new();
        };
        let sender = self.senders[tx.sender_index % self.senders.len()];
        let calldata = tx.calldata(abi);

        // The re-entrant attacker, when it is the sender, re-invokes the same
        // function on the contract when it receives ether.
        if Some(sender) == self.attacker {
            world.account_mut(sender).behaviour = HostBehaviour::ReentrantAttacker {
                callback_data: calldata.clone(),
                max_depth: 3,
            };
        }

        let mut value = tx.value();
        let cap = value_cap();
        if value > cap {
            value = value.div_rem(cap).1;
        }

        let mut evm = Evm::new(world, block).with_programs(&self.programs);
        evm.config.block_lowering = self.block_lowering;
        evm.config.direct_threaded = self.direct_threaded;
        let result = evm.execute_in(
            &Message::new(sender, self.contract_address, value, calldata),
            frame,
        );
        result.trace
    }

    /// The world state immediately after deployment (before any fuzzing).
    pub fn base_world(&self) -> &WorldState {
        &self.base_world
    }

    /// The block environment sequence executions start from (advanced once
    /// per transaction).
    pub fn base_block(&self) -> BlockEnv {
        self.base_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_lang::compile_source;

    const CROWDSALE: &str = r#"
        contract Crowdsale {
            uint256 phase = 0;
            uint256 goal;
            uint256 invested;
            address owner;
            mapping(address => uint256) invests;
            constructor() public { goal = 100 ether; invested = 0; owner = msg.sender; }
            function invest(uint256 donations) public payable {
                if (invested < goal) {
                    invests[msg.sender] += donations;
                    invested += donations;
                    phase = 0;
                } else { phase = 1; }
            }
            function refund() public {
                if (phase == 0) {
                    msg.sender.transfer(invests[msg.sender]);
                    invests[msg.sender] = 0;
                }
            }
            function withdraw() public {
                if (phase == 1) { bug(); owner.transfer(invested); }
            }
        }
    "#;

    fn harness() -> ContractHarness {
        ContractHarness::new(compile_source(CROWDSALE).unwrap(), &FuzzerConfig::default()).unwrap()
    }

    #[test]
    fn harness_deploys_and_funds_senders() {
        let h = harness();
        assert!(h.senders.len() >= 3);
        for s in &h.senders {
            assert!(!h.base_world().balance(*s).is_zero());
        }
        // Constructor ran: goal (slot 1) is 100 ether.
        assert_eq!(
            h.base_world().storage(h.contract_address, U256::ONE),
            ether(100)
        );
        assert!(h.attacker.is_some());
        assert!(h.sink.is_some());
        assert!(h.interesting_addresses().contains(&Address::ZERO));
    }

    #[test]
    fn sequence_execution_accumulates_coverage() {
        let h = harness();
        let single = Sequence::new(vec![TxInput::simple("withdraw")]);
        let outcome_single = h.execute_sequence(&single);
        let full = Sequence::new(vec![
            TxInput::new("invest", 0, ether(100), &[ether(100)]),
            TxInput::new("invest", 0, U256::ONE, &[U256::ONE]),
            TxInput::simple("withdraw"),
        ]);
        let outcome_full = h.execute_sequence(&full);
        assert!(outcome_full.covered_edges.len() > outcome_single.covered_edges.len());
        assert_eq!(outcome_full.traces.len(), 3);
        assert!(outcome_full.any_success());
    }

    #[test]
    fn sequence_executions_are_isolated() {
        let h = harness();
        let seq = Sequence::new(vec![TxInput::new("invest", 0, ether(1), &[ether(100)])]);
        let first = h.execute_sequence(&seq);
        // invested (slot 2) is updated in the outcome world...
        assert_eq!(
            first
                .final_world
                .storage(h.contract_address, U256::from_u64(2)),
            ether(100)
        );
        // ...but the harness base world is untouched, so a later run starts fresh.
        assert_eq!(
            h.base_world()
                .storage(h.contract_address, U256::from_u64(2)),
            U256::ZERO
        );
        let second = h.execute_sequence(&seq);
        assert_eq!(
            second
                .final_world
                .storage(h.contract_address, U256::from_u64(2)),
            ether(100)
        );
    }

    #[test]
    fn outcome_edge_ids_mirror_the_edge_set() {
        let h = harness();
        let outcome = h.execute_sequence(&Sequence::new(vec![
            TxInput::new("invest", 0, ether(100), &[ether(100)]),
            TxInput::simple("refund"),
            TxInput::simple("withdraw"),
        ]));
        // Every covered edge is indexable, and the id list is its exact
        // sorted image.
        assert_eq!(outcome.covered_edge_ids.len(), outcome.covered_edges.len());
        assert!(outcome.covered_edge_ids.windows(2).all(|w| w[0] < w[1]));
        for edge in &outcome.covered_edges {
            let id = h.edge_index().id_of(edge).expect("edge must be indexed");
            assert!(outcome.covered_edge_ids.binary_search(&id).is_ok());
            assert_eq!(h.edge_index().edge_of(id), Some(*edge));
        }
    }

    #[test]
    fn harness_clones_share_one_program_cache_entry() {
        let h = harness();
        let clone = h.clone();
        // Workers clone the harness; the cache itself is one shared Arc, so
        // the runtime code is decoded and block-lowered exactly once.
        assert!(Arc::ptr_eq(h.programs(), clone.programs()));
        let code = h.base_world().code(h.contract_address);
        assert_eq!(h.programs().len(), 1);
        let program = h.programs().get(&code).expect("runtime code is cached");
        let from_clone = clone.programs().get(&code).expect("clone sees the entry");
        assert!(Arc::ptr_eq(program, from_clone));
        let blocks = h.programs().get_block(&code).expect("lowering is cached");
        assert!(Arc::ptr_eq(blocks.base(), program));
    }

    #[test]
    fn rebuilt_harness_does_not_hit_a_stale_cache_entry() {
        // Two independent builds of the same source produce byte-identical
        // runtime code in distinct allocations. Pointer-identity keying must
        // keep the caches disjoint — a rebuilt harness can never be served a
        // stale entry from an older build, and vice versa.
        let h1 = harness();
        let h2 = harness();
        let code1 = h1.base_world().code(h1.contract_address);
        let code2 = h2.base_world().code(h2.contract_address);
        assert_eq!(*code1, *code2);
        assert!(!Arc::ptr_eq(&code1, &code2));
        assert!(h1.programs().get(&code2).is_none());
        assert!(h2.programs().get(&code1).is_none());
        // Both harnesses still execute correctly through their own entries.
        let seq = Sequence::new(vec![
            TxInput::new("invest", 0, ether(100), &[ether(100)]),
            TxInput::simple("withdraw"),
        ]);
        let o1 = h1.execute_sequence(&seq);
        let o2 = h2.execute_sequence(&seq);
        assert_eq!(o1.successes, o2.successes);
        assert_eq!(o1.covered_edge_ids, o2.covered_edge_ids);
    }

    #[test]
    fn unknown_functions_are_skipped() {
        let h = harness();
        let seq = Sequence::new(vec![TxInput::simple("doesNotExist")]);
        let outcome = h.execute_sequence(&seq);
        assert_eq!(outcome.traces[0].instruction_count(), 0);
        assert_eq!(outcome.successes, 1); // an empty trace reports success
    }

    #[test]
    fn huge_values_are_capped_not_rejected() {
        let h = harness();
        let mut tx = TxInput::simple("invest");
        tx.set_value(U256::MAX);
        tx.set_arg_word(0, U256::from_u64(1));
        let outcome = h.execute_sequence(&Sequence::new(vec![tx]));
        assert!(outcome.any_success());
    }

    #[test]
    fn broken_constructor_reports_harness_error() {
        let src = "contract Broken { uint256 x; constructor() public { require(false); } }";
        let err = ContractHarness::new(compile_source(src).unwrap(), &FuzzerConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn sender_rotation_uses_all_accounts() {
        let h = harness();
        let seq = Sequence::new(vec![
            TxInput::new("invest", 0, U256::ONE, &[U256::ONE]),
            TxInput::new("invest", 1, U256::ONE, &[U256::ONE]),
            TxInput::new("invest", 99, U256::ONE, &[U256::ONE]),
        ]);
        let outcome = h.execute_sequence(&seq);
        assert_eq!(outcome.successes, 3);
    }
}
