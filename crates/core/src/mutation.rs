//! Mutation operators and the mutation mask.
//!
//! MuFuzz mutates the byte stream of each transaction with four operators
//! (paper §IV-B): **O**verwrite, **I**nsert, **R**eplace-with-interesting and
//! **D**elete. The *mutation mask* records, per stream position and operator,
//! whether mutating there is allowed — positions critical for reaching a
//! nested branch are frozen (Algorithm 2). This implementation applies the
//! mask at 32-byte word granularity, which matches the ABI encoding where one
//! word is one argument.

use mufuzz_evm::{disassemble, ether, finney, Opcode, U256};
use rand::rngs::SmallRng;
use rand::Rng;

/// The four mutation operators of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// O: overwrite bytes in place with random data.
    Overwrite,
    /// I: insert new bytes.
    Insert,
    /// R: replace bytes with an interesting value.
    Replace,
    /// D: delete bytes.
    Delete,
}

impl MutationOp {
    /// All four operators.
    pub const ALL: [MutationOp; 4] = [
        MutationOp::Overwrite,
        MutationOp::Insert,
        MutationOp::Replace,
        MutationOp::Delete,
    ];

    fn bit(self) -> u8 {
        match self {
            MutationOp::Overwrite => 1,
            MutationOp::Insert => 2,
            MutationOp::Replace => 4,
            MutationOp::Delete => 8,
        }
    }
}

/// Per-word, per-operator mutation permissions for one transaction stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationMask {
    /// One bit set per allowed operator, per 32-byte word of the stream.
    words: Vec<u8>,
}

impl MutationMask {
    /// A mask allowing every operator at every word (the behaviour when mask
    /// guidance is disabled).
    pub fn allow_all(stream_len: usize) -> MutationMask {
        MutationMask {
            words: vec![0x0f; word_count(stream_len)],
        }
    }

    /// A mask forbidding everything (the starting point of Algorithm 2).
    pub fn deny_all(stream_len: usize) -> MutationMask {
        MutationMask {
            words: vec![0; word_count(stream_len)],
        }
    }

    /// Allow `op` at word `index`.
    pub fn allow(&mut self, index: usize, op: MutationOp) {
        if let Some(w) = self.words.get_mut(index) {
            *w |= op.bit();
        }
    }

    /// Is `op` allowed at word `index`? (`OKTOMUTATE` in Algorithm 1.)
    pub fn ok_to_mutate(&self, index: usize, op: MutationOp) -> bool {
        self.words
            .get(index)
            .map(|w| w & op.bit() != 0)
            .unwrap_or(false)
    }

    /// Number of words the mask covers.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the mask covers no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All `(word, op)` pairs that are allowed.
    pub fn allowed_sites(&self) -> Vec<(usize, MutationOp)> {
        let mut sites = Vec::new();
        for (i, _) in self.words.iter().enumerate() {
            for op in MutationOp::ALL {
                if self.ok_to_mutate(i, op) {
                    sites.push((i, op));
                }
            }
        }
        sites
    }

    /// The raw per-word permission bytes (one bit per operator), for
    /// checkpoint serialization.
    pub fn as_bytes(&self) -> &[u8] {
        &self.words
    }

    /// Rebuild a mask from raw permission bytes previously returned by
    /// [`MutationMask::as_bytes`]. Bits outside the four operator bits are
    /// cleared.
    pub fn from_bytes(words: Vec<u8>) -> MutationMask {
        MutationMask {
            words: words.into_iter().map(|w| w & 0x0f).collect(),
        }
    }

    /// Fraction of (word, op) sites that are frozen.
    pub fn frozen_fraction(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        let total = self.words.len() * 4;
        let allowed = self.allowed_sites().len();
        (total - allowed) as f64 / total as f64
    }
}

/// Number of 32-byte words needed to cover a stream.
pub fn word_count(stream_len: usize) -> usize {
    stream_len.div_ceil(32).max(1)
}

/// The pool of interesting values used by the Replace operator: boundary
/// values, common ether denominations and every constant pushed by the
/// contract's own bytecode (the latter is what lets equality guards like
/// `msg.value == 88 finney` be satisfied).
#[derive(Clone, Debug)]
pub struct InterestingValues {
    values: Vec<U256>,
}

impl InterestingValues {
    /// Default boundary values only.
    pub fn defaults() -> InterestingValues {
        InterestingValues {
            values: vec![
                U256::ZERO,
                U256::ONE,
                U256::from_u64(2),
                U256::from_u64(100),
                U256::from_u64(255),
                U256::from_u64(256),
                U256::from_u64(1_000),
                U256::from_u64(u32::MAX as u64),
                U256::from_u64(u64::MAX),
                finney(1),
                finney(88),
                ether(1),
                ether(100),
                U256::MAX,
                U256::MAX.wrapping_sub(U256::ONE),
            ],
        }
    }

    /// Defaults plus every PUSH constant harvested from the runtime bytecode.
    pub fn harvest(runtime_code: &[u8]) -> InterestingValues {
        let mut pool = Self::defaults();
        for instr in disassemble(runtime_code) {
            if let Opcode::Push(_) = instr.opcode {
                let value = U256::from_be_slice(&instr.immediate);
                if !pool.values.contains(&value) {
                    pool.values.push(value);
                }
            }
        }
        pool
    }

    /// Add a value to the pool (used for the fuzzing world's well-known
    /// addresses: senders, the attacker, the sink and the contract itself).
    pub fn add(&mut self, value: U256) {
        if !self.values.contains(&value) {
            self.values.push(value);
        }
    }

    /// Pick a random interesting value.
    pub fn pick(&self, rng: &mut SmallRng) -> U256 {
        self.values[rng.gen_range(0..self.values.len())]
    }

    /// Number of values in the pool.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the pool is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Apply one mutation operator to a byte stream at the given word index,
/// returning the mutated stream.
pub fn apply_op(
    stream: &[u8],
    op: MutationOp,
    word_index: usize,
    rng: &mut SmallRng,
    interesting: &InterestingValues,
) -> Vec<u8> {
    let mut out = stream.to_vec();
    let start = word_index * 32;
    match op {
        MutationOp::Overwrite => {
            if out.is_empty() {
                return out;
            }
            // Either flip a handful of bytes or rewrite the whole word.
            let end = (start + 32).min(out.len());
            if start >= out.len() {
                return out;
            }
            if rng.gen_bool(0.5) {
                let count = rng.gen_range(1..=4usize);
                for _ in 0..count {
                    let pos = rng.gen_range(start..end);
                    out[pos] = rng.gen();
                }
            } else {
                for byte in out.iter_mut().take(end).skip(start) {
                    *byte = rng.gen();
                }
            }
        }
        MutationOp::Insert => {
            let insert_at = start.min(out.len());
            let word = interesting.pick(rng).to_be_bytes();
            out.splice(insert_at..insert_at, word.iter().copied());
        }
        MutationOp::Replace => {
            let end = (start + 32).min(out.len());
            if start >= out.len() {
                // Replacing past the end appends a word instead.
                out.extend_from_slice(&interesting.pick(rng).to_be_bytes());
                return out;
            }
            let word = interesting.pick(rng).to_be_bytes();
            let len = end - start;
            out[start..end].copy_from_slice(&word[32 - len..]);
        }
        MutationOp::Delete => {
            if out.len() <= 32 {
                // Never delete the value word entirely; clear it instead.
                for b in out.iter_mut() {
                    *b = 0;
                }
                return out;
            }
            let end = (start + 32).min(out.len());
            if start < out.len() {
                out.drain(start..end);
            }
        }
    }
    out
}

/// Apply a random allowed mutation according to the mask. Returns `None` when
/// the mask forbids everything.
pub fn mutate_masked(
    stream: &[u8],
    mask: &MutationMask,
    rng: &mut SmallRng,
    interesting: &InterestingValues,
) -> Option<Vec<u8>> {
    let sites = mask.allowed_sites();
    if sites.is_empty() {
        return None;
    }
    let (word, op) = sites[rng.gen_range(0..sites.len())];
    Some(apply_op(stream, op, word, rng, interesting))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn word_count_rounds_up() {
        assert_eq!(word_count(0), 1);
        assert_eq!(word_count(31), 1);
        assert_eq!(word_count(32), 1);
        assert_eq!(word_count(33), 2);
        assert_eq!(word_count(96), 3);
    }

    #[test]
    fn mask_allow_and_deny() {
        let mut mask = MutationMask::deny_all(64);
        assert_eq!(mask.len(), 2);
        assert!(!mask.ok_to_mutate(0, MutationOp::Overwrite));
        mask.allow(0, MutationOp::Overwrite);
        assert!(mask.ok_to_mutate(0, MutationOp::Overwrite));
        assert!(!mask.ok_to_mutate(0, MutationOp::Delete));
        assert!(!mask.ok_to_mutate(1, MutationOp::Overwrite));
        let all = MutationMask::allow_all(64);
        assert_eq!(all.allowed_sites().len(), 8);
        assert_eq!(all.frozen_fraction(), 0.0);
        assert_eq!(MutationMask::deny_all(64).frozen_fraction(), 1.0);
    }

    #[test]
    fn interesting_values_include_harvested_constants() {
        // PUSH3 0x04c4b4 (314548) somewhere in the code.
        let code = vec![0x62, 0x04, 0xc4, 0xb4, 0x00];
        let pool = InterestingValues::harvest(&code);
        assert!(pool.len() > InterestingValues::defaults().len());
        let mut r = rng();
        // Sampling repeatedly must eventually return only pool members.
        for _ in 0..50 {
            let _ = pool.pick(&mut r);
        }
    }

    #[test]
    fn overwrite_keeps_length() {
        let stream = vec![0u8; 96];
        let out = apply_op(
            &stream,
            MutationOp::Overwrite,
            1,
            &mut rng(),
            &InterestingValues::defaults(),
        );
        assert_eq!(out.len(), 96);
        assert_ne!(out, stream);
        // Only the second word may differ.
        assert_eq!(&out[..32], &stream[..32]);
        assert_eq!(&out[64..], &stream[64..]);
    }

    #[test]
    fn insert_grows_and_delete_shrinks() {
        let stream = vec![1u8; 96];
        let grown = apply_op(
            &stream,
            MutationOp::Insert,
            1,
            &mut rng(),
            &InterestingValues::defaults(),
        );
        assert_eq!(grown.len(), 128);
        let shrunk = apply_op(
            &stream,
            MutationOp::Delete,
            1,
            &mut rng(),
            &InterestingValues::defaults(),
        );
        assert_eq!(shrunk.len(), 64);
    }

    #[test]
    fn delete_never_removes_the_last_word() {
        let stream = vec![9u8; 32];
        let out = apply_op(
            &stream,
            MutationOp::Delete,
            0,
            &mut rng(),
            &InterestingValues::defaults(),
        );
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn replace_injects_interesting_values() {
        let stream = vec![0u8; 64];
        let mut r = rng();
        let pool = InterestingValues::defaults();
        let out = apply_op(&stream, MutationOp::Replace, 1, &mut r, &pool);
        assert_eq!(out.len(), 64);
        let injected = U256::from_be_slice(&out[32..]);
        // The injected word must come from the pool.
        assert!(pool.values.contains(&injected));
    }

    #[test]
    fn out_of_range_word_indices_are_safe() {
        let stream = vec![0u8; 32];
        let pool = InterestingValues::defaults();
        let mut r = rng();
        let a = apply_op(&stream, MutationOp::Overwrite, 9, &mut r, &pool);
        assert_eq!(a, stream);
        let b = apply_op(&stream, MutationOp::Replace, 9, &mut r, &pool);
        assert_eq!(b.len(), 64);
        let c = apply_op(&stream, MutationOp::Delete, 9, &mut r, &pool);
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn masked_mutation_respects_the_mask() {
        let stream = vec![0u8; 64];
        let pool = InterestingValues::defaults();
        let mut r = rng();
        let mut mask = MutationMask::deny_all(64);
        assert!(mutate_masked(&stream, &mask, &mut r, &pool).is_none());
        // Only allow Replace on word 1: the first word must stay untouched and
        // the length stays the same.
        mask.allow(1, MutationOp::Replace);
        for _ in 0..20 {
            let out = mutate_masked(&stream, &mask, &mut r, &pool).unwrap();
            assert_eq!(out.len(), 64);
            assert_eq!(&out[..32], &stream[..32]);
        }
    }

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let stream: Vec<u8> = (0..96).map(|i| i as u8).collect();
        let pool = InterestingValues::defaults();
        let a = apply_op(
            &stream,
            MutationOp::Overwrite,
            0,
            &mut SmallRng::seed_from_u64(99),
            &pool,
        );
        let b = apply_op(
            &stream,
            MutationOp::Overwrite,
            0,
            &mut SmallRng::seed_from_u64(99),
            &pool,
        );
        assert_eq!(a, b);
    }
}
