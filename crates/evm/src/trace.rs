//! Execution traces.
//!
//! The interpreter is fully instrumented: every branch decision, basic-block
//! transition, storage write, external call, arithmetic truncation and
//! self-destruct is recorded. The trace is the single source of truth for
//! branch coverage, branch-distance feedback, the dynamic energy adjustment
//! pre-fuzz pass, and all nine bug oracles.

use crate::opcode::Opcode;
use crate::types::Address;
use crate::u256::U256;
use std::collections::BTreeSet;
use std::fmt;

/// Lightweight taint labels propagated through the EVM stack.
///
/// Each stack word carries a small bit set describing which *sources of
/// interest* influenced it. The oracles consume these labels, e.g. the block
/// dependency oracle flags a `JUMPI`/`CALL` whose inputs carry [`Taint::BLOCK`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Taint(u16);

impl Taint {
    /// No taint.
    pub const NONE: Taint = Taint(0);
    /// Value derived from `TIMESTAMP` or `NUMBER`.
    pub const BLOCK: Taint = Taint(1 << 0);
    /// Value derived from `BALANCE`/`SELFBALANCE`.
    pub const BALANCE: Taint = Taint(1 << 1);
    /// Value derived from `CALLER` (`msg.sender`).
    pub const CALLER: Taint = Taint(1 << 2);
    /// Value derived from `ORIGIN` (`tx.origin`).
    pub const ORIGIN: Taint = Taint(1 << 3);
    /// Value derived from calldata (function arguments).
    pub const CALLDATA: Taint = Taint(1 << 4);
    /// Value derived from `CALLVALUE` (`msg.value`).
    pub const CALLVALUE: Taint = Taint(1 << 5);
    /// Value derived from the success flag or return data of an external call.
    pub const CALL_RESULT: Taint = Taint(1 << 6);
    /// Value loaded from persistent storage.
    pub const STORAGE: Taint = Taint(1 << 7);
    /// Value produced by an arithmetic instruction whose exact result was
    /// truncated to 256 bits (overflow/underflow). Lets the interpreter tell
    /// whether a truncated value later reaches persistent storage.
    pub const TRUNCATED: Taint = Taint(1 << 8);

    /// The empty taint set.
    pub const fn empty() -> Taint {
        Taint(0)
    }

    /// True if no labels are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two taint sets.
    pub const fn union(self, other: Taint) -> Taint {
        Taint(self.0 | other.0)
    }

    /// True if every label in `other` is present in `self`.
    pub const fn contains(self, other: Taint) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if `self` and `other` share at least one label.
    pub const fn intersects(self, other: Taint) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for Taint {
    type Output = Taint;
    fn bitor(self, rhs: Taint) -> Taint {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for Taint {
    fn bitor_assign(&mut self, rhs: Taint) {
        *self = self.union(rhs);
    }
}

impl fmt::Debug for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Taint(none)");
        }
        let mut labels = Vec::new();
        for (bit, name) in [
            (Taint::BLOCK, "BLOCK"),
            (Taint::BALANCE, "BALANCE"),
            (Taint::CALLER, "CALLER"),
            (Taint::ORIGIN, "ORIGIN"),
            (Taint::CALLDATA, "CALLDATA"),
            (Taint::CALLVALUE, "CALLVALUE"),
            (Taint::CALL_RESULT, "CALL_RESULT"),
            (Taint::STORAGE, "STORAGE"),
        ] {
            if self.contains(bit) {
                labels.push(name);
            }
        }
        write!(f, "Taint({})", labels.join("|"))
    }
}

/// The comparison operator feeding a conditional branch, used for
/// branch-distance computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpKind {
    /// `LT` / `SLT`
    Lt,
    /// `GT` / `SGT`
    Gt,
    /// `EQ`
    Eq,
    /// `ISZERO` applied to a non-comparison value.
    IsZero,
}

/// The most recent comparison observed before a `JUMPI`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Comparison {
    /// Program counter of the comparison instruction.
    pub pc: usize,
    /// Kind of comparison.
    pub kind: CmpKind,
    /// Left operand.
    pub lhs: U256,
    /// Right operand.
    pub rhs: U256,
    /// Taint of both operands combined.
    pub taint: Taint,
}

impl Comparison {
    /// sFuzz-style branch distance: how far the operands are from flipping
    /// the comparison outcome. Zero means the comparison is exactly on the
    /// boundary; larger means further away.
    pub fn flip_distance(&self) -> U256 {
        match self.kind {
            CmpKind::Eq => self.lhs.abs_diff(self.rhs),
            CmpKind::Lt | CmpKind::Gt => self.lhs.abs_diff(self.rhs),
            CmpKind::IsZero => self.lhs,
        }
    }
}

/// A conditional branch (`JUMPI`) decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchRecord {
    /// Program counter of the `JUMPI` instruction.
    pub pc: usize,
    /// Jump destination on the taken edge.
    pub dest: usize,
    /// Whether the branch was taken (condition non-zero).
    pub taken: bool,
    /// Taint of the condition word.
    pub cond_taint: Taint,
    /// The comparison that produced the condition, when one was observed.
    pub comparison: Option<Comparison>,
    /// Call depth at which the branch executed.
    pub depth: usize,
    /// Address of the executing contract.
    pub code_address: Address,
}

impl BranchRecord {
    /// Identifier of the branch edge that executed: `(pc, taken)`.
    pub fn edge(&self) -> BranchEdge {
        BranchEdge {
            code_address: self.code_address,
            pc: self.pc,
            taken: self.taken,
        }
    }

    /// Identifier of the edge that did *not* execute.
    pub fn untaken_edge(&self) -> BranchEdge {
        BranchEdge {
            code_address: self.code_address,
            pc: self.pc,
            taken: !self.taken,
        }
    }

    /// Distance to flipping this branch outcome, from the comparison operands.
    pub fn flip_distance(&self) -> U256 {
        self.comparison
            .map(|c| c.flip_distance())
            .unwrap_or(U256::ONE)
    }
}

/// A branch edge: one of the two outcomes of a `JUMPI` in a given contract.
/// Branch coverage counts distinct executed edges, which is the paper's
/// "basic block transition" metric.
///
/// The derived `Ord` sorts by `(code_address, pc, taken)`; for a single
/// contract this matches the dense edge numbering the analysis layer assigns
/// (`mufuzz_analysis::EdgeIndex`), so sorted edge sets map to sorted id
/// lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchEdge {
    /// Contract whose code contains the branch.
    pub code_address: Address,
    /// Program counter of the `JUMPI`.
    pub pc: usize,
    /// Which outcome the edge denotes.
    pub taken: bool,
}

impl fmt::Display for BranchEdge {
    /// Compact `pc→outcome` rendering for coverage diagnostics, e.g.
    /// `jumpi@42↷taken` / `jumpi@42↓fallthrough`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jumpi@{}{}",
            self.pc,
            if self.taken {
                "↷taken"
            } else {
                "↓fallthrough"
            }
        )
    }
}

/// An arithmetic operation whose wrapped result differs from the exact
/// mathematical result (used by the integer overflow/underflow oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArithEvent {
    /// Program counter of the instruction.
    pub pc: usize,
    /// The arithmetic opcode (`ADD`, `SUB`, `MUL`, `EXP`).
    pub opcode: Opcode,
    /// Whether the exact result was truncated to 256 bits (over- or
    /// under-flow).
    pub truncated: bool,
    /// Taint of the operands.
    pub taint: Taint,
    /// Whether the wrapped result was subsequently written to storage within
    /// the same transaction (filled in lazily by the interpreter when an
    /// `SSTORE` consumes a truncated value).
    pub reached_storage: bool,
    /// Call depth at which the operation executed.
    pub depth: usize,
}

/// Kind of message call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Ordinary `CALL`.
    Call,
    /// `CALLCODE`.
    CallCode,
    /// `DELEGATECALL`.
    DelegateCall,
    /// `STATICCALL`.
    StaticCall,
}

/// An external call observed during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallEvent {
    /// Program counter of the call instruction.
    pub pc: usize,
    /// Which call instruction was used.
    pub kind: CallKind,
    /// Caller contract.
    pub from: Address,
    /// Callee address.
    pub to: Address,
    /// Value transferred.
    pub value: U256,
    /// Gas forwarded to the callee.
    pub gas: u64,
    /// Whether the callee completed successfully.
    pub success: bool,
    /// Whether the callee hit an `INVALID` instruction or other exception.
    pub callee_exception: bool,
    /// Whether the success flag was later consumed by a `JUMPI`
    /// (filled in lazily; `false` means the result was ignored).
    pub result_checked: bool,
    /// Call depth of the *caller* frame.
    pub depth: usize,
    /// Function selector of the caller frame, when known.
    pub caller_selector: Option<[u8; 4]>,
    /// Taint of the callee address / argument words.
    pub arg_taint: Taint,
    /// Whether a guard on `msg.sender` (a `JUMPI` consuming CALLER taint) was
    /// executed in the caller frame before this call.
    pub caller_guarded: bool,
}

/// A self-destruct observed during execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelfDestructEvent {
    /// Program counter of the `SELFDESTRUCT`.
    pub pc: usize,
    /// Contract that destroyed itself.
    pub contract: Address,
    /// Beneficiary of the remaining balance.
    pub beneficiary: Address,
    /// Whether a guard on `msg.sender` was executed before the instruction.
    pub caller_guarded: bool,
    /// Taint of the beneficiary word.
    pub beneficiary_taint: Taint,
}

/// A persistent storage write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageWrite {
    /// Program counter of the `SSTORE`.
    pub pc: usize,
    /// Contract whose storage was written.
    pub contract: Address,
    /// Storage slot.
    pub slot: U256,
    /// Previous value.
    pub old: U256,
    /// New value.
    pub new: U256,
    /// Taint of the stored value.
    pub taint: Taint,
}

/// Why an execution frame stopped.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum HaltReason {
    /// `STOP` or `RETURN`.
    #[default]
    Normal,
    /// `REVERT` was executed.
    Revert,
    /// `INVALID` was executed.
    Invalid,
    /// Out of gas.
    OutOfGas,
    /// Stack underflow/overflow or bad jump destination.
    Fault(String),
}

impl HaltReason {
    /// True if the frame completed without exception.
    pub fn is_success(&self) -> bool {
        matches!(self, HaltReason::Normal)
    }
}

/// 256-bit presence set over opcode bytes: which opcodes a transaction
/// executed, at any call depth. Two words of bit arithmetic per membership
/// operation — cheap enough to update on every dispatched instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpcodeSet([u64; 4]);

impl OpcodeSet {
    /// Mark `op` as executed.
    #[inline(always)]
    pub fn insert(&mut self, op: Opcode) {
        let byte = op.to_byte() as usize;
        self.0[byte >> 6] |= 1 << (byte & 63);
    }

    /// True if `op` was marked.
    #[inline]
    pub fn contains(&self, op: Opcode) -> bool {
        let byte = op.to_byte() as usize;
        self.0[byte >> 6] & (1 << (byte & 63)) != 0
    }

    /// OR another set into this one (bulk insert). Four word ORs — what a
    /// fused dispatch arm pays to mark a whole superinstruction's opcodes,
    /// precomputed at lowering time, instead of one [`OpcodeSet::insert`]
    /// per constituent.
    #[inline(always)]
    pub fn merge(&mut self, other: OpcodeSet) {
        self.0[0] |= other.0[0];
        self.0[1] |= other.0[1];
        self.0[2] |= other.0[2];
        self.0[3] |= other.0[3];
    }
}

/// An executed opcode byte the interpreter does not implement. The frame
/// halts exceptionally (consuming its remaining gas budget like `INVALID`),
/// and the event records where the conformance surface fell short so
/// ingested real-bytecode campaigns can report unsupported instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConformanceEvent {
    /// Program counter of the unimplemented byte.
    pub pc: usize,
    /// The raw opcode byte.
    pub byte: u8,
    /// Call depth of the halting frame.
    pub depth: usize,
}

/// Instrumentation record of a single top-level transaction execution.
///
/// `PartialEq` compares every recorded event — the decoder differential
/// suite relies on it to assert that the pre-decoded pipeline traces
/// bit-identically to the legacy byte-at-a-time decoder.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecutionTrace {
    /// Number of executed instructions across all frames. A plain counter:
    /// nothing downstream replays the instruction stream, so the interpreter
    /// does not materialise it — the heavy analysis data lives in the
    /// dedicated event vectors below.
    pub instr_count: u64,
    /// Presence set of every opcode executed at any depth.
    pub ops_seen: OpcodeSet,
    /// Conditional branch decisions in execution order.
    pub branches: Vec<BranchRecord>,
    /// Distinct branch edges exercised.
    pub covered_edges: BTreeSet<BranchEdge>,
    /// Arithmetic truncation events.
    pub arith_events: Vec<ArithEvent>,
    /// External calls.
    pub calls: Vec<CallEvent>,
    /// Self-destructs.
    pub self_destructs: Vec<SelfDestructEvent>,
    /// Storage writes.
    pub storage_writes: Vec<StorageWrite>,
    /// Selectors of the functions entered in this transaction (outermost frame).
    pub entered_selector: Option<[u8; 4]>,
    /// Maximum call depth reached.
    pub max_depth: usize,
    /// Whether a re-entrant call (callee calling back into an ancestor frame's
    /// contract) occurred.
    pub reentered: bool,
    /// Total gas consumed.
    pub gas_used: u64,
    /// Why the outermost frame halted.
    pub halt: HaltReason,
    /// Conformance-tagged events: opcode bytes outside the implemented
    /// surface that were executed (each one is an exceptional halt of its
    /// frame).
    pub conformance: Vec<ConformanceEvent>,
}

impl ExecutionTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        ExecutionTrace {
            halt: HaltReason::Normal,
            ..Default::default()
        }
    }

    /// True if the outermost frame completed successfully.
    pub fn success(&self) -> bool {
        self.halt.is_success()
    }

    /// Number of executed instructions across all frames.
    pub fn instruction_count(&self) -> usize {
        self.instr_count as usize
    }

    /// True if any executed instruction at any depth matches the opcode.
    pub fn contains_opcode(&self, op: Opcode) -> bool {
        self.ops_seen.contains(op)
    }

    /// Record one executed instruction: bump the count and mark the opcode.
    #[inline(always)]
    pub fn record_instr(&mut self, op: Opcode) {
        self.instr_count += 1;
        self.ops_seen.insert(op);
    }

    /// Record a whole dispatch unit at once: `count` constituent
    /// instructions whose opcodes are `mask` (precomputed at lowering time).
    /// Equivalent to `count` [`ExecutionTrace::record_instr`] calls over the
    /// unit's constituents, in one counter bump and four word ORs.
    #[inline(always)]
    pub fn record_unit(&mut self, mask: OpcodeSet, count: u32) {
        self.instr_count += u64::from(count);
        self.ops_seen.merge(mask);
    }

    /// Iterate over the branch records belonging to a particular contract.
    pub fn branches_of(&self, address: Address) -> impl Iterator<Item = &BranchRecord> {
        self.branches
            .iter()
            .filter(move |b| b.code_address == address)
    }

    /// Merge the coverage of another trace into an accumulated edge set.
    pub fn merge_edges_into(&self, acc: &mut BTreeSet<BranchEdge>) -> usize {
        let before = acc.len();
        acc.extend(self.covered_edges.iter().copied());
        acc.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_set_operations() {
        let t = Taint::BLOCK | Taint::CALLER;
        assert!(t.contains(Taint::BLOCK));
        assert!(t.contains(Taint::CALLER));
        assert!(!t.contains(Taint::BALANCE));
        assert!(t.intersects(Taint::CALLER | Taint::ORIGIN));
        assert!(!t.intersects(Taint::ORIGIN));
        assert!(Taint::empty().is_empty());
        assert!(!t.is_empty());
    }

    #[test]
    fn taint_debug_lists_labels() {
        let t = Taint::BLOCK | Taint::STORAGE;
        let s = format!("{t:?}");
        assert!(s.contains("BLOCK"));
        assert!(s.contains("STORAGE"));
        assert_eq!(format!("{:?}", Taint::empty()), "Taint(none)");
    }

    #[test]
    fn comparison_flip_distance() {
        let c = Comparison {
            pc: 0,
            kind: CmpKind::Eq,
            lhs: U256::from_u64(100),
            rhs: U256::from_u64(88),
            taint: Taint::empty(),
        };
        assert_eq!(c.flip_distance(), U256::from_u64(12));
        let z = Comparison {
            kind: CmpKind::IsZero,
            lhs: U256::from_u64(7),
            rhs: U256::ZERO,
            ..c
        };
        assert_eq!(z.flip_distance(), U256::from_u64(7));
    }

    #[test]
    fn branch_edges_distinguish_outcomes() {
        let rec = BranchRecord {
            pc: 10,
            dest: 40,
            taken: true,
            cond_taint: Taint::empty(),
            comparison: None,
            depth: 0,
            code_address: Address::from_low_u64(1),
        };
        assert_ne!(rec.edge(), rec.untaken_edge());
        assert_eq!(rec.edge().pc, rec.untaken_edge().pc);
        assert_eq!(rec.flip_distance(), U256::ONE);
        assert_eq!(format!("{}", rec.edge()), "jumpi@10↷taken");
        assert_eq!(format!("{}", rec.untaken_edge()), "jumpi@10↓fallthrough");
    }

    #[test]
    fn branch_edge_ordering_groups_siblings() {
        let edge = |pc, taken| BranchEdge {
            code_address: Address::from_low_u64(1),
            pc,
            taken,
        };
        // (pc, fallthrough) sorts immediately before (pc, taken), and both
        // before any higher pc — the property the dense edge numbering
        // relies on.
        let mut edges = vec![edge(9, false), edge(4, true), edge(9, true), edge(4, false)];
        edges.sort();
        assert_eq!(
            edges,
            vec![edge(4, false), edge(4, true), edge(9, false), edge(9, true)]
        );
    }

    #[test]
    fn halt_reason_success() {
        assert!(HaltReason::Normal.is_success());
        assert!(!HaltReason::Revert.is_success());
        assert!(!HaltReason::Fault("stack underflow".into()).is_success());
    }

    #[test]
    fn trace_edge_merging_counts_new_edges() {
        let mut trace = ExecutionTrace::new();
        let edge = |pc, taken| BranchEdge {
            code_address: Address::from_low_u64(1),
            pc,
            taken,
        };
        trace.covered_edges.insert(edge(1, true));
        trace.covered_edges.insert(edge(1, false));
        let mut acc = BTreeSet::new();
        acc.insert(edge(1, true));
        let added = trace.merge_edges_into(&mut acc);
        assert_eq!(added, 1);
        assert_eq!(acc.len(), 2);
    }
}
