//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal harness implementing the API subset the `crates/bench/benches`
//! targets use: [`Criterion::bench_function`], benchmark groups with
//! throughput/sample-size knobs, [`BenchmarkId`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it measures wall-clock time:
//! each benchmark is warmed up once, calibrated to a per-benchmark time
//! budget (`CRITERION_SAMPLE_MS`, default 200 ms), and reported as mean
//! time/iteration on stdout. Good enough to spot order-of-magnitude
//! regressions offline; swap back to the real crate for publishable numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it as many times as the harness requested.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn run_benchmark(label: &str, throughput: Option<&Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up and measure the cost of a single iteration.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let single = bencher.elapsed.max(Duration::from_nanos(1));

    // Spend roughly the sample budget on the measured run.
    let budget = sample_budget();
    let iters = (budget.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(n) => format!(
                ", {:.1} MiB/s",
                *n as f64 / per_iter * 1e9 / (1 << 20) as f64
            ),
            Throughput::Elements(n) => format!(", {:.1} Melem/s", *n as f64 / per_iter * 1e9 / 1e6),
        })
        .unwrap_or_default();
    println!("bench: {label:<50} {per_iter:>12.1} ns/iter ({iters} iters{rate})");
}

/// Declared throughput of one benchmark, mirroring `criterion::Throughput`.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new<S: Into<String>, D: std::fmt::Display>(name: S, param: D) -> Self {
        BenchmarkId {
            label: format!("{}/{param}", name.into()),
        }
    }
}

/// The top-level benchmark harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, self.throughput.as_ref(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.throughput.as_ref(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
