//! The EVM instruction set used by this reproduction.
//!
//! The subset covers everything the `mufuzz-lang` compiler emits plus every
//! instruction the nine bug oracles and the path-prefix analysis inspect
//! (`CALL`, `DELEGATECALL`, `SELFDESTRUCT`, `BALANCE`, `TIMESTAMP`, `NUMBER`,
//! `ORIGIN`, `INVALID`, comparison and arithmetic instructions, `JUMPI`).

/// A decoded EVM opcode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // the variants are the standard EVM mnemonics
pub enum Opcode {
    Stop,
    Add,
    Mul,
    Sub,
    Div,
    Sdiv,
    Mod,
    Smod,
    AddMod,
    MulMod,
    Exp,
    SignExtend,

    Lt,
    Gt,
    Slt,
    Sgt,
    Eq,
    IsZero,
    And,
    Or,
    Xor,
    Not,
    Byte,
    Shl,
    Shr,
    Sar,

    Sha3,

    Address,
    Balance,
    Origin,
    Caller,
    CallValue,
    CallDataLoad,
    CallDataSize,
    CallDataCopy,
    CodeSize,
    CodeCopy,
    GasPrice,
    ExtCodeSize,
    ExtCodeCopy,
    ReturnDataSize,
    ReturnDataCopy,
    ExtCodeHash,

    BlockHash,
    Coinbase,
    Timestamp,
    Number,
    Difficulty,
    GasLimit,
    ChainId,
    SelfBalance,
    BaseFee,

    Pop,
    MLoad,
    MStore,
    MStore8,
    SLoad,
    SStore,
    Jump,
    JumpI,
    Pc,
    MSize,
    Gas,
    JumpDest,

    /// `PUSH1`..`PUSH32`; the payload length is stored in the variant.
    Push(u8),
    /// `DUP1`..`DUP16`; the depth is stored in the variant.
    Dup(u8),
    /// `SWAP1`..`SWAP16`; the depth is stored in the variant.
    Swap(u8),
    /// `LOG0`..`LOG4`; the topic count is stored in the variant.
    Log(u8),

    Create,
    Call,
    CallCode,
    Return,
    DelegateCall,
    Create2,
    StaticCall,
    Revert,
    Invalid,
    SelfDestruct,

    /// Any byte that does not decode to a supported instruction.
    Unknown(u8),
}

impl Opcode {
    /// Decode a single opcode byte.
    pub fn from_byte(byte: u8) -> Opcode {
        use Opcode::*;
        match byte {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Mul,
            0x03 => Sub,
            0x04 => Div,
            0x05 => Sdiv,
            0x06 => Mod,
            0x07 => Smod,
            0x08 => AddMod,
            0x09 => MulMod,
            0x0a => Exp,
            0x0b => SignExtend,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => Slt,
            0x13 => Sgt,
            0x14 => Eq,
            0x15 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x1a => Byte,
            0x1b => Shl,
            0x1c => Shr,
            0x1d => Sar,
            0x20 => Sha3,
            0x30 => Address,
            0x31 => Balance,
            0x32 => Origin,
            0x33 => Caller,
            0x34 => CallValue,
            0x35 => CallDataLoad,
            0x36 => CallDataSize,
            0x37 => CallDataCopy,
            0x38 => CodeSize,
            0x39 => CodeCopy,
            0x3a => GasPrice,
            0x3b => ExtCodeSize,
            0x3c => ExtCodeCopy,
            0x3d => ReturnDataSize,
            0x3e => ReturnDataCopy,
            0x3f => ExtCodeHash,
            0x40 => BlockHash,
            0x41 => Coinbase,
            0x42 => Timestamp,
            0x43 => Number,
            0x44 => Difficulty,
            0x45 => GasLimit,
            0x46 => ChainId,
            0x47 => SelfBalance,
            0x48 => BaseFee,
            0x50 => Pop,
            0x51 => MLoad,
            0x52 => MStore,
            0x53 => MStore8,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x59 => MSize,
            0x5a => Gas,
            0x5b => JumpDest,
            0x60..=0x7f => Push(byte - 0x5f),
            0x80..=0x8f => Dup(byte - 0x7f),
            0x90..=0x9f => Swap(byte - 0x8f),
            0xa0..=0xa4 => Log(byte - 0xa0),
            0xf0 => Create,
            0xf1 => Call,
            0xf2 => CallCode,
            0xf3 => Return,
            0xf4 => DelegateCall,
            0xf5 => Create2,
            0xfa => StaticCall,
            0xfd => Revert,
            0xfe => Invalid,
            0xff => SelfDestruct,
            other => Unknown(other),
        }
    }

    /// Encode to the opcode byte.
    pub fn to_byte(self) -> u8 {
        use Opcode::*;
        match self {
            Stop => 0x00,
            Add => 0x01,
            Mul => 0x02,
            Sub => 0x03,
            Div => 0x04,
            Sdiv => 0x05,
            Mod => 0x06,
            Smod => 0x07,
            AddMod => 0x08,
            MulMod => 0x09,
            Exp => 0x0a,
            SignExtend => 0x0b,
            Lt => 0x10,
            Gt => 0x11,
            Slt => 0x12,
            Sgt => 0x13,
            Eq => 0x14,
            IsZero => 0x15,
            And => 0x16,
            Or => 0x17,
            Xor => 0x18,
            Not => 0x19,
            Byte => 0x1a,
            Shl => 0x1b,
            Shr => 0x1c,
            Sar => 0x1d,
            Sha3 => 0x20,
            Address => 0x30,
            Balance => 0x31,
            Origin => 0x32,
            Caller => 0x33,
            CallValue => 0x34,
            CallDataLoad => 0x35,
            CallDataSize => 0x36,
            CallDataCopy => 0x37,
            CodeSize => 0x38,
            CodeCopy => 0x39,
            GasPrice => 0x3a,
            ExtCodeSize => 0x3b,
            ExtCodeCopy => 0x3c,
            ReturnDataSize => 0x3d,
            ReturnDataCopy => 0x3e,
            ExtCodeHash => 0x3f,
            BlockHash => 0x40,
            Coinbase => 0x41,
            Timestamp => 0x42,
            Number => 0x43,
            Difficulty => 0x44,
            GasLimit => 0x45,
            ChainId => 0x46,
            SelfBalance => 0x47,
            BaseFee => 0x48,
            Pop => 0x50,
            MLoad => 0x51,
            MStore => 0x52,
            MStore8 => 0x53,
            SLoad => 0x54,
            SStore => 0x55,
            Jump => 0x56,
            JumpI => 0x57,
            Pc => 0x58,
            MSize => 0x59,
            Gas => 0x5a,
            JumpDest => 0x5b,
            Push(n) => 0x5f + n,
            Dup(n) => 0x7f + n,
            Swap(n) => 0x8f + n,
            Log(n) => 0xa0 + n,
            Create => 0xf0,
            Call => 0xf1,
            CallCode => 0xf2,
            Return => 0xf3,
            DelegateCall => 0xf4,
            Create2 => 0xf5,
            StaticCall => 0xfa,
            Revert => 0xfd,
            Invalid => 0xfe,
            SelfDestruct => 0xff,
            Unknown(b) => b,
        }
    }

    /// Size of the immediate payload following the opcode in the bytecode.
    pub fn immediate_size(self) -> usize {
        match self {
            Opcode::Push(n) => n as usize,
            _ => 0,
        }
    }

    /// Number of stack items consumed.
    pub fn stack_inputs(self) -> usize {
        use Opcode::*;
        match self {
            Stop | JumpDest | Pc | MSize | Gas | Address | Origin | Caller | CallValue
            | CallDataSize | CodeSize | GasPrice | Coinbase | Timestamp | Number | Difficulty
            | GasLimit | ChainId | SelfBalance | BaseFee | ReturnDataSize | Push(_) => 0,
            IsZero | Not | Balance | CallDataLoad | MLoad | SLoad | BlockHash | Pop | Jump
            | ExtCodeSize | ExtCodeHash | SelfDestruct => 1,
            Add | Mul | Sub | Div | Sdiv | Mod | Smod | Exp | SignExtend | Lt | Gt | Slt | Sgt
            | Eq | And | Or | Xor | Byte | Shl | Shr | Sar | Sha3 | MStore | MStore8 | SStore
            | JumpI | Return | Revert => 2,
            AddMod | MulMod | CallDataCopy | CodeCopy | ReturnDataCopy | Create => 3,
            ExtCodeCopy | Create2 => 4,
            Log(n) => 2 + n as usize,
            DelegateCall | StaticCall => 6,
            Call | CallCode => 7,
            Dup(n) => n as usize,
            Swap(n) => n as usize + 1,
            Invalid | Unknown(_) => 0,
        }
    }

    /// Number of stack items produced.
    pub fn stack_outputs(self) -> usize {
        use Opcode::*;
        match self {
            Stop | JumpDest | Pop | Jump | JumpI | MStore | MStore8 | SStore | CallDataCopy
            | CodeCopy | ReturnDataCopy | ExtCodeCopy | Return | Revert | SelfDestruct | Log(_)
            | Invalid | Unknown(_) => 0,
            Swap(n) => n as usize + 1,
            Dup(n) => n as usize + 1,
            Call | CallCode | DelegateCall | StaticCall | Create | Create2 => 1,
            _ => 1,
        }
    }

    /// True for instructions that terminate a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Stop
                | Opcode::Jump
                | Opcode::JumpI
                | Opcode::Return
                | Opcode::Revert
                | Opcode::Invalid
                | Opcode::SelfDestruct
        )
    }

    /// True for the instructions the paper treats as *vulnerable instructions*
    /// during path-prefix analysis (§IV-C): external calls, block state
    /// accesses, self-destruct, delegatecall and balance reads.
    pub fn is_vulnerable_instruction(self) -> bool {
        matches!(
            self,
            Opcode::Call
                | Opcode::CallCode
                | Opcode::DelegateCall
                | Opcode::SelfDestruct
                | Opcode::Timestamp
                | Opcode::Number
                | Opcode::Balance
                | Opcode::Origin
        )
    }

    /// Human-readable mnemonic.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            Push(n) => format!("PUSH{n}"),
            Dup(n) => format!("DUP{n}"),
            Swap(n) => format!("SWAP{n}"),
            Log(n) => format!("LOG{n}"),
            Unknown(b) => format!("UNKNOWN(0x{b:02x})"),
            other => format!("{other:?}").to_uppercase(),
        }
    }
}

/// A disassembled instruction: program counter, opcode and optional
/// push payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset of the opcode in the code.
    pub pc: usize,
    /// Decoded opcode.
    pub opcode: Opcode,
    /// Immediate bytes for `PUSH*` instructions.
    pub immediate: Vec<u8>,
}

/// Disassemble bytecode into a list of instructions.
pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
    let mut out = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let opcode = Opcode::from_byte(code[pc]);
        let imm_len = opcode.immediate_size();
        let end = (pc + 1 + imm_len).min(code.len());
        out.push(Instruction {
            pc,
            opcode,
            immediate: code[pc + 1..end].to_vec(),
        });
        pc = pc + 1 + imm_len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_all_known_opcodes() {
        for byte in 0u8..=255 {
            let op = Opcode::from_byte(byte);
            assert_eq!(op.to_byte(), byte, "roundtrip failed for 0x{byte:02x}");
        }
    }

    #[test]
    fn push_immediate_sizes() {
        assert_eq!(Opcode::from_byte(0x60), Opcode::Push(1));
        assert_eq!(Opcode::from_byte(0x7f), Opcode::Push(32));
        assert_eq!(Opcode::Push(5).immediate_size(), 5);
        assert_eq!(Opcode::Add.immediate_size(), 0);
    }

    #[test]
    fn dup_swap_ranges() {
        assert_eq!(Opcode::from_byte(0x80), Opcode::Dup(1));
        assert_eq!(Opcode::from_byte(0x8f), Opcode::Dup(16));
        assert_eq!(Opcode::from_byte(0x90), Opcode::Swap(1));
        assert_eq!(Opcode::from_byte(0x9f), Opcode::Swap(16));
    }

    #[test]
    fn stack_arity() {
        assert_eq!(Opcode::Add.stack_inputs(), 2);
        assert_eq!(Opcode::Add.stack_outputs(), 1);
        assert_eq!(Opcode::Call.stack_inputs(), 7);
        assert_eq!(Opcode::DelegateCall.stack_inputs(), 6);
        assert_eq!(Opcode::JumpI.stack_inputs(), 2);
        assert_eq!(Opcode::JumpI.stack_outputs(), 0);
        assert_eq!(Opcode::Sar.stack_inputs(), 2);
        assert_eq!(Opcode::Sar.stack_outputs(), 1);
        assert_eq!(Opcode::Push(4).stack_inputs(), 0);
        assert_eq!(Opcode::Push(4).stack_outputs(), 1);
    }

    #[test]
    fn terminators_and_vulnerable_instructions() {
        assert!(Opcode::JumpI.is_terminator());
        assert!(Opcode::Return.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(Opcode::Call.is_vulnerable_instruction());
        assert!(Opcode::Timestamp.is_vulnerable_instruction());
        assert!(!Opcode::Add.is_vulnerable_instruction());
    }

    #[test]
    fn disassemble_simple_program() {
        // PUSH1 0x02 PUSH1 0x03 ADD STOP
        let code = vec![0x60, 0x02, 0x60, 0x03, 0x01, 0x00];
        let instrs = disassemble(&code);
        assert_eq!(instrs.len(), 4);
        assert_eq!(instrs[0].opcode, Opcode::Push(1));
        assert_eq!(instrs[0].immediate, vec![0x02]);
        assert_eq!(instrs[2].opcode, Opcode::Add);
        assert_eq!(instrs[2].pc, 4);
        assert_eq!(instrs[3].opcode, Opcode::Stop);
    }

    #[test]
    fn disassemble_truncated_push() {
        // PUSH32 with only 2 payload bytes available.
        let code = vec![0x7f, 0xaa, 0xbb];
        let instrs = disassemble(&code);
        assert_eq!(instrs.len(), 1);
        assert_eq!(instrs[0].immediate, vec![0xaa, 0xbb]);
    }

    #[test]
    fn conformance_surface_decodes() {
        assert_eq!(Opcode::from_byte(0x39), Opcode::CodeCopy);
        assert_eq!(Opcode::from_byte(0x3b), Opcode::ExtCodeSize);
        assert_eq!(Opcode::from_byte(0x3c), Opcode::ExtCodeCopy);
        assert_eq!(Opcode::from_byte(0x3d), Opcode::ReturnDataSize);
        assert_eq!(Opcode::from_byte(0x3e), Opcode::ReturnDataCopy);
        assert_eq!(Opcode::from_byte(0x3f), Opcode::ExtCodeHash);
        assert_eq!(Opcode::from_byte(0x46), Opcode::ChainId);
        assert_eq!(Opcode::from_byte(0x48), Opcode::BaseFee);
        assert_eq!(Opcode::from_byte(0xf5), Opcode::Create2);
        assert_eq!(Opcode::ReturnDataCopy.stack_inputs(), 3);
        assert_eq!(Opcode::ExtCodeCopy.stack_inputs(), 4);
        assert_eq!(Opcode::Create2.stack_inputs(), 4);
        assert_eq!(Opcode::Create2.stack_outputs(), 1);
        assert_eq!(Opcode::ChainId.stack_inputs(), 0);
        assert_eq!(Opcode::ChainId.mnemonic(), "CHAINID");
        assert_eq!(Opcode::Create2.mnemonic(), "CREATE2");
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Opcode::Push(1).mnemonic(), "PUSH1");
        assert_eq!(Opcode::Sha3.mnemonic(), "SHA3");
        assert_eq!(Opcode::Unknown(0xef).mnemonic(), "UNKNOWN(0xef)");
    }
}
