//! Bug classes and findings.
//!
//! MuFuzz targets the nine vulnerability classes of Table I of the paper:
//! block dependency, unprotected delegatecall, ether freezing, integer
//! over-/under-flow, reentrancy, unprotected self-destruct, strict ether
//! equality, transaction-origin use and unhandled exceptions.

use std::fmt;

/// The nine bug classes handled by MuFuzz (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// BD — block dependency (`block.timestamp` / `block.number` influencing
    /// control flow or transfers).
    BlockDependency,
    /// UD — unprotected `delegatecall` with attacker-influenced target/data.
    UnprotectedDelegatecall,
    /// EF — ether freezing: the contract can receive ether but never send it.
    EtherFreezing,
    /// IO — integer overflow / underflow.
    IntegerOverflow,
    /// RE — reentrancy.
    Reentrancy,
    /// US — unprotected `selfdestruct`.
    UnprotectedSelfDestruct,
    /// SE — strict ether equality used as a branch condition.
    StrictEtherEquality,
    /// TO — authentication via `tx.origin`.
    TxOriginUse,
    /// UE — unhandled exception (unchecked low-level call / send).
    UnhandledException,
}

impl BugClass {
    /// All nine classes in the order the paper's tables list them.
    pub const ALL: [BugClass; 9] = [
        BugClass::BlockDependency,
        BugClass::UnprotectedDelegatecall,
        BugClass::EtherFreezing,
        BugClass::IntegerOverflow,
        BugClass::Reentrancy,
        BugClass::UnprotectedSelfDestruct,
        BugClass::StrictEtherEquality,
        BugClass::TxOriginUse,
        BugClass::UnhandledException,
    ];

    /// The two-letter abbreviation used throughout the paper.
    pub fn abbrev(&self) -> &'static str {
        match self {
            BugClass::BlockDependency => "BD",
            BugClass::UnprotectedDelegatecall => "UD",
            BugClass::EtherFreezing => "EF",
            BugClass::IntegerOverflow => "IO",
            BugClass::Reentrancy => "RE",
            BugClass::UnprotectedSelfDestruct => "US",
            BugClass::StrictEtherEquality => "SE",
            BugClass::TxOriginUse => "TO",
            BugClass::UnhandledException => "UE",
        }
    }

    /// Parse a two-letter abbreviation.
    pub fn from_abbrev(s: &str) -> Option<BugClass> {
        BugClass::ALL
            .iter()
            .copied()
            .find(|c| c.abbrev().eq_ignore_ascii_case(s))
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BugClass::BlockDependency => "block dependency",
            BugClass::UnprotectedDelegatecall => "unprotected delegatecall",
            BugClass::EtherFreezing => "ether freezing",
            BugClass::IntegerOverflow => "integer over-/under-flow",
            BugClass::Reentrancy => "reentrancy",
            BugClass::UnprotectedSelfDestruct => "unprotected self-destruct",
            BugClass::StrictEtherEquality => "strict ether equality",
            BugClass::TxOriginUse => "transaction origin use",
            BugClass::UnhandledException => "unhandled exception",
        }
    }
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abbrev())
    }
}

/// A deduplicated bug finding: one bug class in one function (or at contract
/// level when no function can be attributed).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BugFinding {
    /// Bug class.
    pub class: BugClass,
    /// Function the finding is attributed to (`None` = contract level).
    pub function: Option<String>,
    /// Representative program counter (first observation).
    pub pc: usize,
    /// Short explanation of why the oracle fired.
    pub detail: String,
}

impl BugFinding {
    /// Create a finding.
    pub fn new(
        class: BugClass,
        function: Option<String>,
        pc: usize,
        detail: impl Into<String>,
    ) -> Self {
        BugFinding {
            class,
            function,
            pc,
            detail: detail.into(),
        }
    }

    /// Key used to deduplicate findings: class + function.
    pub fn dedup_key(&self) -> (BugClass, Option<&str>) {
        (self.class, self.function.as_deref())
    }
}

impl fmt::Display for BugFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "[{}] in {}(): {}", self.class, func, self.detail),
            None => write!(f, "[{}] contract-level: {}", self.class, self.detail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_have_unique_abbreviations() {
        let mut seen = std::collections::BTreeSet::new();
        for class in BugClass::ALL {
            assert!(seen.insert(class.abbrev()));
            assert_eq!(BugClass::from_abbrev(class.abbrev()), Some(class));
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn abbrev_parsing_is_case_insensitive() {
        assert_eq!(BugClass::from_abbrev("re"), Some(BugClass::Reentrancy));
        assert_eq!(BugClass::from_abbrev("Io"), Some(BugClass::IntegerOverflow));
        assert_eq!(BugClass::from_abbrev("zz"), None);
    }

    #[test]
    fn finding_display_and_dedup_key() {
        let f = BugFinding::new(
            BugClass::Reentrancy,
            Some("withdraw".into()),
            42,
            "call.value followed by state write",
        );
        assert!(f.to_string().contains("RE"));
        assert!(f.to_string().contains("withdraw"));
        assert_eq!(f.dedup_key(), (BugClass::Reentrancy, Some("withdraw")));
        let g = BugFinding::new(BugClass::Reentrancy, Some("withdraw".into()), 77, "other");
        assert_eq!(f.dedup_key(), g.dedup_key());
    }
}
