//! The fleet executor pool: one work-stealing thread pool shared by every
//! submitted campaign.
//!
//! Historically the repo ran two nested pools — `mufuzz_bench::parallel_map`
//! fanned contracts out over scoped threads while every `Fuzzer::run` spawned
//! its own per-campaign workers — which oversubscribed the machine on every
//! dataset sweep. The [`FleetPool`] replaces both: it owns a fixed set of
//! threads, campaigns submit `(campaign, mutant-batch)` tasks, and idle
//! threads steal work from busy ones, so the total thread count is exactly
//! the pool size no matter how many campaigns are in flight.
//!
//! Scheduling is two-level:
//!
//! * a global **injector** — a priority queue ordered by the submitting
//!   campaign's score (marginal coverage per execution, see
//!   [`crate::energy::marginal_coverage_priority`]) with FIFO order among
//!   equals — receives fresh submissions and periodic re-prioritisations;
//! * per-thread **local deques** receive a lane's continuation batches, so a
//!   campaign lane keeps running on a warm thread until another thread
//!   steals it or the lane routes through the injector to be re-ranked.
//!
//! Local deques are popped FIFO (not the classic LIFO) so the lanes of
//! co-scheduled campaigns interleave fairly even on a single thread.
//!
//! Dropping the pool drains every queued task before joining the threads, so
//! submitted campaigns always run to completion.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// A unit of pool work. Tasks are one-shot; long-lived work (a campaign
/// lane) re-enqueues its continuation through the [`WorkerCtx`].
pub type Task = Box<dyn FnOnce(&WorkerCtx) + Send + 'static>;

/// Process-wide count of fleet threads ever spawned. The fleet smoke test
/// asserts on deltas of this counter to prove that running campaigns through
/// a service spawns no threads beyond the pool's own.
static POOL_THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total fleet threads spawned by this process so far (monotone).
pub fn pool_threads_spawned() -> usize {
    POOL_THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// An injector entry: higher `priority` pops first; among equal priorities,
/// earlier submissions (`seq`) pop first.
struct PrioritizedTask {
    priority: f64,
    seq: u64,
    task: Task,
}

impl PartialEq for PrioritizedTask {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for PrioritizedTask {}
impl PartialOrd for PrioritizedTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioritizedTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Max-heap: the lower sequence number must compare greater so
            // equal-priority tasks pop in submission order.
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PoolShared {
    injector: Mutex<BinaryHeap<PrioritizedTask>>,
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks currently sitting in the injector or a local deque. Lets idle
    /// workers check "is there anything at all?" without sweeping every
    /// queue, and closes the check-then-park wakeup race.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    seq: AtomicU64,
    idle: Mutex<()>,
    wake: Condvar,
}

impl PoolShared {
    fn push_injector(&self, priority: f64, task: Task) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.injector
            .lock()
            .expect("fleet injector poisoned")
            .push(PrioritizedTask {
                priority,
                seq,
                task,
            });
        // Taking (and immediately dropping) the idle lock orders this push
        // after any worker's empty-queue check, so the notify cannot be lost.
        drop(self.idle.lock().expect("fleet idle lock poisoned"));
        self.wake.notify_all();
    }

    fn push_local(&self, index: usize, task: Task) {
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.locals[index]
            .lock()
            .expect("fleet local deque poisoned")
            .push_back(task);
        drop(self.idle.lock().expect("fleet idle lock poisoned"));
        self.wake.notify_all();
    }

    /// Pop the next task for worker `index`: own deque first (FIFO), then
    /// the highest-priority injector entry, then steal from a sibling.
    fn next_task(&self, index: usize) -> Option<Task> {
        if let Some(task) = self.locals[index]
            .lock()
            .expect("fleet local deque poisoned")
            .pop_front()
        {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(task);
        }
        if let Some(entry) = self.injector.lock().expect("fleet injector poisoned").pop() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(entry.task);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(task) = self.locals[victim]
                .lock()
                .expect("fleet local deque poisoned")
                .pop_front()
            {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }
}

/// Handle a running task gets to its executing pool thread: its index and
/// the two re-enqueue paths (warm local continuation vs re-prioritised
/// injector submission).
pub struct WorkerCtx {
    shared: Arc<PoolShared>,
    index: usize,
}

impl WorkerCtx {
    /// The executing thread's index in `0..thread_count`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Re-enqueue a continuation on this thread's local deque (runs soon,
    /// cache-warm, stealable by idle siblings).
    pub fn respawn_local(&self, task: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.push_local(self.index, Box::new(task));
    }

    /// Re-enqueue a continuation through the global injector at `priority`,
    /// letting the pool re-rank it against every other campaign.
    pub fn respawn_global(&self, priority: f64, task: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.push_injector(priority, Box::new(task));
    }
}

/// The work-stealing executor pool. See the module docs for the design.
pub struct FleetPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl FleetPool {
    /// Spawn a pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> FleetPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(BinaryHeap::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                POOL_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                thread::Builder::new()
                    .name(format!("fleet-worker-{index}"))
                    .spawn(move || Self::worker_loop(shared, index))
                    .expect("failed to spawn fleet worker thread")
            })
            .collect();
        FleetPool { shared, handles }
    }

    fn worker_loop(shared: Arc<PoolShared>, index: usize) {
        let ctx = WorkerCtx {
            shared: Arc::clone(&shared),
            index,
        };
        loop {
            if let Some(task) = shared.next_task(index) {
                // Keep the pool alive across a panicking task: the panic is
                // contained to the task (map() re-raises it at the join
                // point; campaign lanes are expected not to panic).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&ctx)));
                continue;
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let guard = shared.idle.lock().expect("fleet idle lock poisoned");
            if shared.pending.load(Ordering::Relaxed) > 0 || shared.shutdown.load(Ordering::Relaxed)
            {
                continue;
            }
            // The timeout is belt and braces only; the push paths take the
            // idle lock before notifying, so wakeups cannot be lost.
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(100))
                .expect("fleet idle lock poisoned");
        }
    }

    /// Number of worker threads in the pool.
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Submit a task through the prioritised injector. Higher `priority`
    /// runs first; equal priorities run in submission order.
    pub fn spawn(&self, priority: f64, task: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.shared.push_injector(priority, Box::new(task));
    }

    /// Apply `f` to every item on the pool and return the results in input
    /// order (the fleet's replacement for the retired
    /// `mufuzz_bench::parallel_map`).
    ///
    /// Blocks the calling thread until every item has completed. Must not be
    /// called from inside a pool task (a pool thread blocking on its own
    /// pool can deadlock); call it from driver threads only. Panics if `f`
    /// panicked on any item.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        struct MapState<R> {
            results: Mutex<Vec<Option<R>>>,
            remaining: Mutex<usize>,
            done: Condvar,
            panicked: AtomicBool,
        }
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let state = Arc::new(MapState::<R> {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let state = Arc::clone(&state);
            self.spawn(0.0, move |_| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                match result {
                    Ok(r) => state.results.lock().expect("fleet map poisoned")[i] = Some(r),
                    Err(_) => state.panicked.store(true, Ordering::Relaxed),
                }
                let mut remaining = state.remaining.lock().expect("fleet map poisoned");
                *remaining -= 1;
                if *remaining == 0 {
                    state.done.notify_all();
                }
            });
        }
        let mut remaining = state.remaining.lock().expect("fleet map poisoned");
        while *remaining > 0 {
            remaining = state.done.wait(remaining).expect("fleet map poisoned");
        }
        drop(remaining);
        if state.panicked.load(Ordering::Relaxed) {
            panic!("a fleet map task panicked");
        }
        let mut results = state.results.lock().expect("fleet map poisoned");
        results
            .iter_mut()
            .map(|slot| slot.take().expect("fleet map slot unfilled"))
            .collect()
    }
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        drop(self.shared.idle.lock().expect("fleet idle lock poisoned"));
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// Ported from the retired `mufuzz_bench::parallel_map` test: results
    /// come back in input order with every item processed exactly once.
    #[test]
    fn map_preserves_order_and_runs_everything() {
        let pool = FleetPool::new(4);
        let items: Vec<usize> = (0..50).collect();
        let results = pool.map(items, |x| {
            if x % 7 == 0 {
                thread::sleep(Duration::from_millis(2));
            }
            x * 2
        });
        assert_eq!(results, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_of_nothing_is_nothing() {
        let pool = FleetPool::new(2);
        let results: Vec<usize> = pool.map(Vec::<usize>::new(), |x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn pool_clamps_to_one_thread_and_counts_spawns() {
        let before = pool_threads_spawned();
        let pool = FleetPool::new(0);
        assert_eq!(pool.thread_count(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
        drop(pool);
        assert!(pool_threads_spawned() > before);
    }

    /// The injector is a priority queue: with the single worker gated, later
    /// high-priority submissions overtake earlier low-priority ones, and
    /// equal priorities keep submission order.
    #[test]
    fn injector_pops_by_priority_then_submission_order() {
        let pool = FleetPool::new(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (tag_tx, tag_rx) = mpsc::channel::<&'static str>();
        // Occupy the only worker so the next submissions queue up.
        pool.spawn(10.0, move |_| {
            gate_rx.recv().expect("gate sender dropped");
        });
        for (priority, tag) in [(0.1, "low"), (0.9, "high"), (0.5, "mid-a"), (0.5, "mid-b")] {
            let tag_tx = tag_tx.clone();
            pool.spawn(priority, move |_| {
                tag_tx.send(tag).expect("tag receiver dropped");
            });
        }
        gate_tx.send(()).expect("gate receiver dropped");
        let order: Vec<&str> = (0..4).map(|_| tag_rx.recv().unwrap()).collect();
        assert_eq!(order, ["high", "mid-a", "mid-b", "low"]);
    }

    /// Local continuations run on the pushing thread's deque and idle
    /// siblings steal them: a chain of respawn_local tasks completes even
    /// though only the first link went through the injector.
    #[test]
    fn respawned_continuations_complete() {
        let pool = FleetPool::new(2);
        let (tx, rx) = mpsc::channel::<usize>();
        fn link(n: usize, tx: mpsc::Sender<usize>, ctx: &WorkerCtx) {
            if n == 0 {
                tx.send(0).expect("receiver dropped");
            } else if n.is_multiple_of(3) {
                ctx.respawn_global(1.0, move |ctx| link(n - 1, tx, ctx));
            } else {
                ctx.respawn_local(move |ctx| link(n - 1, tx, ctx));
            }
        }
        pool.spawn(1.0, move |ctx| link(20, tx, ctx));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(0));
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = FleetPool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(0.0, move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropping the pool must run everything already submitted.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
