//! # mufuzz
//!
//! A reproduction of **MuFuzz: Sequence-Aware Mutation and Seed Mask Guidance
//! for Blockchain Smart Contract Fuzzing** (ICDE 2024).
//!
//! MuFuzz is a coverage-guided greybox fuzzer for Ethereum smart contracts
//! built around three components:
//!
//! 1. **Sequence-aware mutation** (§IV-A) — transaction orderings derived from
//!    state-variable data flow, with RAW-based repetition of critical
//!    transactions ([`seedgen`], [`mufuzz_analysis::plan_sequence`]).
//! 2. **Mask-guided seed mutation** (§IV-B) — branch-distance seed selection
//!    plus a per-position mutation mask that freezes the input bytes critical
//!    for reaching deeply nested branches ([`mutation`], Algorithm 1/2).
//! 3. **Dynamic-adaptive energy adjustment** (§IV-C) — branch-weighted energy
//!    allocation from a pre-fuzz path analysis ([`energy`], Algorithm 3).
//!
//! Bugs are reported through the nine trace-based oracles of
//! [`mufuzz_oracles`].
//!
//! Campaigns run in **fleet mode**: a [`CampaignService`] schedules every
//! submitted contract's campaign — as [`FuzzerConfig::workers`] sequential
//! *lanes* — on one work-stealing [`fleet::FleetPool`], prioritised across
//! campaigns by marginal coverage per execution. Lanes share one corpus and
//! energy scheduler per campaign (see [`campaign`]); branch coverage is
//! merged into a lock-free atomic bitmap ([`coverage::CoverageMap`]) keyed
//! by the dense edge ids of [`mufuzz_analysis::EdgeIndex`], and the
//! execution budget is reserved atomically so `report.executions` never
//! exceeds `max_executions()`. With `workers == 1` campaigns are fully
//! deterministic for a given `rng_seed`, and can be paused, checkpointed to
//! a versioned [`CampaignSnapshot`] and resumed bit-identically. Selecting
//! [`DeterminismProfile::Round`] extends that contract to *every* worker
//! count: the campaign advances in barrier-synchronized rounds of fixed
//! work slots, any parallelism produces the bit-identical report, corpus
//! and findings, and each finding carries a replayable [`FindingRecord`]
//! ([`replay_finding`]). The full concurrency model is documented in
//! `docs/ARCHITECTURE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use mufuzz::{Fuzzer, FuzzerConfig};
//! use mufuzz_lang::compile_source;
//!
//! let compiled = compile_source(
//!     "contract Counter {
//!          uint256 total;
//!          function add(uint256 x) public { total += x; }
//!          function check() public { if (total > 100) { bug(); } }
//!      }",
//! )
//! .unwrap();
//!
//! let mut fuzzer = Fuzzer::new(compiled, FuzzerConfig::mufuzz(200)).unwrap();
//! let report = fuzzer.run();
//! assert!(report.coverage > 0.0);
//! assert!(report.executions <= 200); // exact budget, at any worker count
//! println!("covered {}/{} branch edges", report.covered_edges, report.total_edges);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod config;
pub mod coverage;
pub mod energy;
pub mod executor;
pub mod fleet;
pub mod input;
pub mod mutation;
pub mod replay;
mod round;
pub mod seedgen;
pub mod service;
pub mod snapshot;

pub use campaign::{CampaignReport, CoveragePoint, Fuzzer};
pub use config::{
    default_workers, BudgetConfig, DeterminismProfile, FuzzerConfig, SchedulerConfig,
    DEFAULT_ROUND_CULL_INTERVAL,
};
pub use coverage::{CoverageMap, LocalCoverage};
pub use executor::{ContractHarness, HarnessError, SequenceOutcome};
pub use fleet::{pool_threads_spawned, FleetPool};
pub use input::{Seed, Sequence, TxInput};
pub use mutation::{InterestingValues, MutationMask, MutationOp};
pub use replay::{replay_finding, FindingRecord, ReplayError, ReplayOutcome};
pub use seedgen::SequenceGenerator;
pub use service::{
    CampaignEvent, CampaignHandle, CampaignProgress, CampaignService, SubmitOptions,
};
pub use snapshot::{CampaignSnapshot, SnapshotError};

// Re-export the sibling crates so downstream users can depend on `mufuzz`
// alone.
pub use mufuzz_analysis as analysis;
pub use mufuzz_evm as evm;
pub use mufuzz_lang as lang;
pub use mufuzz_oracles as oracles;

/// Everything a driver needs in one import: the fuzzer, the campaign
/// service, configuration, reports, snapshots, and the compiler entry
/// point.
pub mod prelude {
    pub use crate::campaign::{CampaignReport, CoveragePoint, Fuzzer};
    pub use crate::config::{
        default_workers, BudgetConfig, DeterminismProfile, FuzzerConfig, SchedulerConfig,
    };
    pub use crate::replay::{replay_finding, FindingRecord, ReplayError, ReplayOutcome};
    pub use crate::service::{
        CampaignEvent, CampaignHandle, CampaignProgress, CampaignService, SubmitOptions,
    };
    pub use crate::snapshot::{CampaignSnapshot, SnapshotError};
    pub use mufuzz_lang::{compile_source, CompiledContract};
    pub use mufuzz_oracles::{BugClass, BugFinding};
}
