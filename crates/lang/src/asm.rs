//! A tiny two-pass EVM assembler with symbolic labels.
//!
//! The code generator emits a stream of [`AsmItem`]s; label references are
//! always encoded as `PUSH2` so offsets can be resolved in a single sizing
//! pass.

use mufuzz_evm::{Opcode, U256};
use std::collections::HashMap;

/// A symbolic jump label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub usize);

/// One assembler item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmItem {
    /// A bare opcode.
    Op(Opcode),
    /// A push with a concrete immediate payload.
    Push(Vec<u8>),
    /// A `PUSH2` whose payload is the resolved offset of a label.
    PushLabel(Label),
    /// A label definition; emits a `JUMPDEST` at the label position.
    LabelDef(Label),
}

/// Errors produced during assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError(pub String);

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assembly error: {}", self.0)
    }
}

impl std::error::Error for AsmError {}

/// The assembler: collects items, then resolves labels into bytecode.
#[derive(Default, Debug)]
pub struct Assembler {
    items: Vec<AsmItem>,
    next_label: usize,
}

impl Assembler {
    /// Create an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh label.
    pub fn new_label(&mut self) -> Label {
        let label = Label(self.next_label);
        self.next_label += 1;
        label
    }

    /// Emit a bare opcode.
    pub fn op(&mut self, opcode: Opcode) {
        self.items.push(AsmItem::Op(opcode));
    }

    /// Emit the minimal `PUSHn` for a 256-bit constant.
    pub fn push_u256(&mut self, value: U256) {
        let bytes = value.to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(31);
        self.items.push(AsmItem::Push(bytes[first..].to_vec()));
    }

    /// Emit the minimal `PUSHn` for a small constant.
    pub fn push_u64(&mut self, value: u64) {
        self.push_u256(U256::from_u64(value));
    }

    /// Emit a `PUSH4` with exactly four bytes (used for selectors).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        assert!(!bytes.is_empty() && bytes.len() <= 32);
        self.items.push(AsmItem::Push(bytes.to_vec()));
    }

    /// Emit a `PUSH2` carrying the offset of `label` once resolved.
    pub fn push_label(&mut self, label: Label) {
        self.items.push(AsmItem::PushLabel(label));
    }

    /// Define `label` here; a `JUMPDEST` is emitted at this position.
    pub fn place(&mut self, label: Label) {
        self.items.push(AsmItem::LabelDef(label));
    }

    /// Number of emitted items (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn item_size(item: &AsmItem) -> usize {
        match item {
            AsmItem::Op(_) => 1,
            AsmItem::Push(payload) => 1 + payload.len(),
            AsmItem::PushLabel(_) => 3,
            AsmItem::LabelDef(_) => 1, // the JUMPDEST byte
        }
    }

    /// Resolve labels and produce bytecode plus the resolved offset of every
    /// label.
    pub fn assemble(&self) -> Result<(Vec<u8>, HashMap<Label, usize>), AsmError> {
        // Pass 1: compute label offsets.
        let mut offsets = HashMap::new();
        let mut pc = 0usize;
        for item in &self.items {
            if let AsmItem::LabelDef(label) = item {
                if offsets.insert(*label, pc).is_some() {
                    return Err(AsmError(format!("label {label:?} defined twice")));
                }
            }
            pc += Self::item_size(item);
        }
        if pc > u16::MAX as usize {
            return Err(AsmError("bytecode exceeds PUSH2-addressable size".into()));
        }

        // Pass 2: emit bytes.
        let mut code = Vec::with_capacity(pc);
        for item in &self.items {
            match item {
                AsmItem::Op(op) => code.push(op.to_byte()),
                AsmItem::Push(payload) => {
                    code.push(Opcode::Push(payload.len() as u8).to_byte());
                    code.extend_from_slice(payload);
                }
                AsmItem::PushLabel(label) => {
                    let offset = *offsets
                        .get(label)
                        .ok_or_else(|| AsmError(format!("label {label:?} never placed")))?;
                    code.push(Opcode::Push(2).to_byte());
                    code.extend_from_slice(&(offset as u16).to_be_bytes());
                }
                AsmItem::LabelDef(_) => code.push(Opcode::JumpDest.to_byte()),
            }
        }
        Ok((code, offsets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mufuzz_evm::disassemble;

    #[test]
    fn minimal_push_encoding() {
        let mut asm = Assembler::new();
        asm.push_u64(0);
        asm.push_u64(0xff);
        asm.push_u64(0x1234);
        asm.push_u256(U256::MAX);
        let (code, _) = asm.assemble().unwrap();
        let instrs = disassemble(&code);
        assert_eq!(instrs[0].opcode, Opcode::Push(1));
        assert_eq!(instrs[0].immediate, vec![0]);
        assert_eq!(instrs[1].opcode, Opcode::Push(1));
        assert_eq!(instrs[1].immediate, vec![0xff]);
        assert_eq!(instrs[2].opcode, Opcode::Push(2));
        assert_eq!(instrs[3].opcode, Opcode::Push(32));
    }

    #[test]
    fn labels_resolve_to_jumpdest_offsets() {
        let mut asm = Assembler::new();
        let target = asm.new_label();
        asm.push_u64(1);
        asm.push_label(target);
        asm.op(Opcode::JumpI);
        asm.op(Opcode::Invalid);
        asm.place(target);
        asm.op(Opcode::Stop);
        let (code, offsets) = asm.assemble().unwrap();
        let target_pc = offsets[&target];
        assert_eq!(code[target_pc], Opcode::JumpDest.to_byte());
        // The PUSH2 payload must equal the target offset.
        let instrs = disassemble(&code);
        let push2 = instrs.iter().find(|i| i.opcode == Opcode::Push(2)).unwrap();
        let encoded = u16::from_be_bytes([push2.immediate[0], push2.immediate[1]]) as usize;
        assert_eq!(encoded, target_pc);
    }

    #[test]
    fn forward_and_backward_references() {
        let mut asm = Assembler::new();
        let start = asm.new_label();
        let end = asm.new_label();
        asm.place(start);
        asm.push_u64(0);
        asm.push_label(end);
        asm.op(Opcode::JumpI);
        asm.push_label(start);
        asm.op(Opcode::Jump);
        asm.place(end);
        asm.op(Opcode::Stop);
        let (_, offsets) = asm.assemble().unwrap();
        assert!(offsets[&end] > offsets[&start]);
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.push_label(l);
        assert!(asm.assemble().is_err());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.place(l);
        asm.place(l);
        assert!(asm.assemble().is_err());
    }
}
