//! Throughput benchmark of the campaign engine: fuzz the quickstart
//! PiggyBank contract with 1 worker and with N workers — the N-worker
//! campaign both on the sharded seed scheduler (the default: lock-free
//! steady-state draws) and on the historical global draw under the state
//! lock — then sweep three corpus contracts through one `CampaignService`
//! fleet pool, sequentially and concurrently. Reports execs/sec for each
//! and emits a machine-readable `BENCH_throughput.json` so CI can track the
//! performance trajectory, the sharded-vs-global scaling claim and the
//! fleet-concurrency claim across PRs.
//!
//! Run with:
//! ```text
//! cargo run --release --example throughput            # N = 4 workers
//! MUFUZZ_WORKERS=8 cargo run --release --example throughput
//! MUFUZZ_EXECS=100000 cargo run --release --example throughput
//! ```

use mufuzz::{CampaignReport, CampaignService, Fuzzer, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_lang::compile_source;
use std::time::Instant;

const SOURCE: &str = r#"
contract PiggyBank {
    address owner;
    uint256 total;
    mapping(address => uint256) deposits;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        require(msg.value > 0);
        deposits[msg.sender] += msg.value;
        total += msg.value;
    }

    function withdraw(uint256 amount) public {
        require(deposits[msg.sender] >= amount);
        deposits[msg.sender] -= amount;
        total -= amount;
        msg.sender.transfer(amount);
    }

    function smash() public {
        if (total > 10 ether) {
            bug();
            selfdestruct(msg.sender);
        }
    }
}
"#;

fn campaign(workers: usize, executions: usize, sharded: bool) -> CampaignReport {
    let compiled = compile_source(SOURCE).expect("contract should compile");
    let config = FuzzerConfig::mufuzz(executions)
        .with_rng_seed(42)
        .with_workers(workers)
        .with_sharded_scheduler(sharded);
    Fuzzer::new(compiled, config)
        .expect("deployment should succeed")
        .run()
}

fn print_report(report: &CampaignReport, sharded: bool) {
    println!(
        "workers={} scheduler={}: {} execs in {} ms -> {:.0} execs/sec ({:.1}% coverage)",
        report.workers,
        if sharded { "sharded" } else { "global" },
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    );
}

/// One JSON record per measured configuration.
fn json_entry(report: &CampaignReport, sharded: bool) -> String {
    format!(
        concat!(
            "{{\"workers\": {}, \"sharded_scheduler\": {}, \"executions\": {}, ",
            "\"elapsed_ms\": {}, \"execs_per_sec\": {:.1}, \"coverage_percent\": {:.2}}}"
        ),
        report.workers,
        sharded,
        report.executions,
        report.elapsed_ms,
        report.execs_per_sec(),
        report.coverage_percent()
    )
}

/// Sweep three corpus contracts through one fleet pool of `threads`
/// threads. `concurrent` submits all three up front (the fleet case);
/// otherwise each campaign is waited out before the next is submitted (the
/// sequential baseline). Returns `(total executions, elapsed ms)`.
fn fleet_sweep(threads: usize, executions: usize, concurrent: bool) -> (usize, u64) {
    let sources = [
        contracts::crowdsale().source,
        contracts::game().source,
        contracts::reentrant_bank().source,
    ];
    let service = CampaignService::new(threads);
    let config = || FuzzerConfig::mufuzz(executions).with_rng_seed(42);
    let start = Instant::now();
    let total: usize = if concurrent {
        let handles: Vec<_> = sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service.submit(compiled, config()).expect("deploys")
            })
            .collect();
        handles.into_iter().map(|h| h.wait().executions).sum()
    } else {
        sources
            .iter()
            .map(|s| {
                let compiled = compile_source(s).expect("corpus contract compiles");
                service
                    .submit(compiled, config())
                    .expect("deploys")
                    .wait()
                    .executions
            })
            .sum()
    };
    (total, start.elapsed().as_millis().max(1) as u64)
}

/// JSON record for one fleet sweep.
fn fleet_json(threads: usize, total: usize, elapsed_ms: u64) -> String {
    format!(
        concat!(
            "{{\"threads\": {}, \"executions\": {}, \"elapsed_ms\": {}, ",
            "\"execs_per_sec\": {:.1}}}"
        ),
        threads,
        total,
        elapsed_ms,
        total as f64 * 1000.0 / elapsed_ms as f64
    )
}

fn main() {
    let executions = std::env::var("MUFUZZ_EXECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let workers = std::env::var("MUFUZZ_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Warm-up run so page faults and lazy allocations do not skew the
    // single-worker number.
    campaign(1, executions / 10, true);

    let single = campaign(1, executions, true);
    print_report(&single, true);

    // The scaling A/B: the same N-worker campaign drawn from per-worker
    // corpus shards (lock-free steady state) vs under the state lock.
    let sharded = campaign(workers, executions, true);
    print_report(&sharded, true);
    let global = campaign(workers, executions, false);
    print_report(&global, false);
    println!(
        "speedup vs single: sharded {:.2}x, global {:.2}x; sharded vs global {:.2}x",
        sharded.execs_per_sec() / single.execs_per_sec(),
        global.execs_per_sec() / single.execs_per_sec(),
        sharded.execs_per_sec() / global.execs_per_sec()
    );

    // The fleet sweep: three corpus contracts through one CampaignService,
    // sequentially on one pool thread vs concurrently on `workers` threads.
    let fleet_budget = (executions / 10).max(500);
    let (seq_total, seq_ms) = fleet_sweep(1, fleet_budget, false);
    let (conc_total, conc_ms) = fleet_sweep(workers, fleet_budget, true);
    let seq_rate = seq_total as f64 * 1000.0 / seq_ms as f64;
    let conc_rate = conc_total as f64 * 1000.0 / conc_ms as f64;
    println!(
        "fleet sweep (3 contracts x {fleet_budget} execs): sequential {seq_rate:.0} execs/sec, \
         concurrent x{workers} {conc_rate:.0} execs/sec ({:.2}x)",
        conc_rate / seq_rate
    );

    // Machine-readable record for the CI perf-smoke artifact.
    let json = format!(
        concat!(
            "{{\n  \"benchmark\": \"piggybank\",\n  \"budget\": {},\n",
            "  \"single\": {},\n  \"parallel_sharded\": {},\n  \"parallel_global\": {},\n",
            "  \"fleet_sequential\": {},\n  \"fleet_concurrent\": {}\n}}\n"
        ),
        executions,
        json_entry(&single, true),
        json_entry(&sharded, true),
        json_entry(&global, false),
        fleet_json(1, seq_total, seq_ms),
        fleet_json(workers, conc_total, conc_ms)
    );
    let path =
        std::env::var("MUFUZZ_BENCH_JSON").unwrap_or_else(|_| "BENCH_throughput.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
