//! The interpreter's gas schedule.
//!
//! The *static* per-opcode costs live here so the dispatch loop, the
//! basic-block lowering (which pre-sums them per block, see
//! [`crate::program::BlockProgram`]) and the block-splitting tests all bill
//! from one table. Dynamic costs — memory expansion, the per-byte `EXP`
//! surcharge, call-gas forwarding — are charged by the dispatch loop at the
//! instruction that incurs them and are *not* part of the static schedule.

use crate::opcode::Opcode;

/// Gas added per significant byte of an `EXP` exponent (dynamic part of the
/// `EXP` price, charged on top of the static base cost).
pub const EXP_BYTE_GAS: u64 = 50;

/// The static gas cost of one opcode (the EVM-flavoured schedule every
/// execution path charges; dynamic surcharges come on top).
#[inline]
pub fn static_gas(op: Opcode) -> u64 {
    use Opcode::*;
    match op {
        Stop | JumpDest => 1,
        Push(_) | Dup(_) | Swap(_) | Pop | Pc | MSize | Gas | Address | Origin | Caller
        | CallValue | CallDataSize | CodeSize | GasPrice | Coinbase | Timestamp | Number
        | Difficulty | GasLimit | SelfBalance => 2,
        Add | Sub | Not | Lt | Gt | Slt | Sgt | Eq | IsZero | And | Or | Xor | Byte | Shl | Shr
        | Sar | CallDataLoad | MLoad | MStore | MStore8 => 3,
        Mul | Div | Sdiv | Mod | Smod | SignExtend => 5,
        AddMod | MulMod | Jump => 8,
        JumpI => 10,
        // Base cost only: the dispatch loop adds 50 gas per significant
        // exponent byte once the operands are popped (EIP-160-style dynamic
        // pricing), so `2 EXP 2^255` costs 50 + 50·32 while `2 EXP 2` costs
        // 50 + 50·1.
        Exp => 50,
        Sha3 => 36,
        Balance | BlockHash => 400,
        SLoad => 200,
        SStore => 5_000,
        Log(n) => 375 * (n as u64 + 1),
        Call | CallCode | DelegateCall | StaticCall => 700,
        Create => 32_000,
        Return | Revert => 0,
        Invalid | SelfDestruct | CallDataCopy | Unknown(_) => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_spot_checks() {
        assert_eq!(static_gas(Opcode::Stop), 1);
        assert_eq!(static_gas(Opcode::Push(32)), 2);
        assert_eq!(static_gas(Opcode::Add), 3);
        assert_eq!(static_gas(Opcode::JumpI), 10);
        assert_eq!(static_gas(Opcode::Exp), 50);
        assert_eq!(static_gas(Opcode::SStore), 5_000);
        assert_eq!(static_gas(Opcode::Log(2)), 1_125);
        assert_eq!(static_gas(Opcode::Return), 0);
    }
}
