//! World state: accounts, balances, code and persistent storage.
//!
//! Smart contracts are stateful programs; the fuzzer repeatedly replays
//! transaction sequences against a snapshot of the deployed world state, so
//! cloning and snapshot/revert need to be cheap and correct.
//!
//! The state is copy-on-write: a frozen **base** map of accounts (shared
//! behind an `Arc` by every snapshot) plus a small **overlay** of accounts
//! created or modified since. Reads consult the overlay first; the first
//! write to an account clones it from the base into the overlay. A
//! [`WorldState::snapshot`] therefore costs one `Arc` clone plus a clone of
//! the overlay — O(accounts *changed*), not O(world) — which is what lets
//! the interpreter keep full EVM revert semantics (snapshot before every
//! transaction, restore on failure) at fuzzing throughput. The harness
//! [freezes](WorldState::freeze) the post-constructor world once, so every
//! sequence execution starts from an O(1) restore of that constructor
//! snapshot.

use crate::trace::Taint;
use crate::types::Address;
use crate::u256::U256;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Host-implemented behaviour for accounts that are not plain bytecode
/// contracts. Used to model the attacker harness required by the reentrancy
/// oracle without having to compile an attacker contract for every target.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum HostBehaviour {
    /// A plain externally-owned account (or bytecode contract if code is set).
    #[default]
    None,
    /// When this account receives a call carrying value, it re-enters the
    /// caller with the given calldata, up to `max_depth` nested times.
    ReentrantAttacker {
        /// Calldata to send back to the calling contract on re-entry.
        callback_data: Vec<u8>,
        /// Maximum re-entrancy depth.
        max_depth: usize,
    },
    /// An account that rejects every incoming transfer (its fallback reverts).
    /// Useful for exercising unhandled-exception paths.
    RejectingSink,
}

/// A single account in the world state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Account {
    /// Ether balance in wei.
    pub balance: U256,
    /// Deployed runtime bytecode (empty for externally-owned accounts).
    pub code: Arc<Vec<u8>>,
    /// Persistent key-value storage.
    pub storage: HashMap<U256, U256>,
    /// Taint labels remembered for stored values (analysis-only metadata;
    /// it does not affect execution semantics).
    pub storage_taint: HashMap<U256, Taint>,
    /// Transaction count / deployment nonce.
    pub nonce: u64,
    /// Host behaviour override (attacker harness, rejecting sink, ...).
    pub behaviour: HostBehaviour,
    /// Whether the account has self-destructed during the current transaction.
    pub destroyed: bool,
}

impl Account {
    /// A plain externally-owned account with the given balance.
    pub fn eoa(balance: U256) -> Self {
        Account {
            balance,
            ..Default::default()
        }
    }

    /// A contract account with the given runtime code and balance.
    pub fn contract(code: Vec<u8>, balance: U256) -> Self {
        Account {
            balance,
            code: Arc::new(code),
            ..Default::default()
        }
    }

    /// True if the account carries executable code or host behaviour.
    pub fn is_callable(&self) -> bool {
        !self.code.is_empty() || self.behaviour != HostBehaviour::None
    }
}

/// The full world state: a copy-on-write map from address to account.
///
/// See the [module documentation](self) for the base/overlay split and its
/// cost model. The external API is a plain address → account map; all
/// copy-on-write bookkeeping is internal.
#[derive(Clone, Debug, Default)]
pub struct WorldState {
    /// Accounts frozen at the last [`WorldState::freeze`], shared by every
    /// snapshot taken since.
    base: Arc<HashMap<Address, Account>>,
    /// Accounts created or modified since the freeze; shadows `base`.
    overlay: HashMap<Address, Account>,
    /// Accounts removed since the freeze; shadows both maps. Empty in
    /// ordinary execution (nothing on the EVM path deletes accounts).
    erased: BTreeSet<Address>,
}

impl WorldState {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an account.
    pub fn put_account(&mut self, address: Address, account: Account) {
        self.erased.remove(&address);
        self.overlay.insert(address, account);
    }

    /// Remove an account entirely, returning it if present.
    pub fn remove_account(&mut self, address: Address) -> Option<Account> {
        let was_erased = self.erased.contains(&address);
        let from_overlay = self.overlay.remove(&address);
        if self.base.contains_key(&address) {
            self.erased.insert(address);
        }
        from_overlay.or_else(|| {
            if was_erased {
                None
            } else {
                self.base.get(&address).cloned()
            }
        })
    }

    /// Immutable access to an account.
    pub fn account(&self, address: Address) -> Option<&Account> {
        if let Some(account) = self.overlay.get(&address) {
            return Some(account);
        }
        if self.erased.contains(&address) {
            return None;
        }
        self.base.get(&address)
    }

    /// Mutable access, creating an empty account on demand. The first write
    /// to a frozen account copies it into the overlay (copy-on-write).
    pub fn account_mut(&mut self, address: Address) -> &mut Account {
        if !self.overlay.contains_key(&address) {
            let seed = if self.erased.remove(&address) {
                Account::default()
            } else {
                self.base.get(&address).cloned().unwrap_or_default()
            };
            self.overlay.insert(address, seed);
        }
        self.overlay
            .get_mut(&address)
            .expect("account was just inserted into the overlay")
    }

    /// Balance of an account (zero if absent).
    pub fn balance(&self, address: Address) -> U256 {
        self.account(address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// Code of an account (empty if absent).
    pub fn code(&self, address: Address) -> Arc<Vec<u8>> {
        self.account(address)
            .map(|a| Arc::clone(&a.code))
            .unwrap_or_default()
    }

    /// Storage slot value of an account (zero if absent).
    pub fn storage(&self, address: Address, slot: U256) -> U256 {
        self.account(address)
            .and_then(|a| a.storage.get(&slot).copied())
            .unwrap_or(U256::ZERO)
    }

    /// Taint label recorded for a storage slot.
    pub fn storage_taint(&self, address: Address, slot: U256) -> Taint {
        self.account(address)
            .and_then(|a| a.storage_taint.get(&slot).copied())
            .unwrap_or_default()
    }

    /// Write a storage slot, recording its taint label.
    pub fn set_storage(&mut self, address: Address, slot: U256, value: U256, taint: Taint) {
        let account = self.account_mut(address);
        if value.is_zero() {
            account.storage.remove(&slot);
        } else {
            account.storage.insert(slot, value);
        }
        if taint.is_empty() {
            account.storage_taint.remove(&slot);
        } else {
            account.storage_taint.insert(slot, taint);
        }
    }

    /// Transfer value between two accounts. Returns false (and leaves the
    /// state untouched) if the sender balance is insufficient.
    pub fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = self.balance(from);
        if from_balance < value {
            return false;
        }
        self.account_mut(from).balance = from_balance.wrapping_sub(value);
        let to_balance = self.balance(to);
        self.account_mut(to).balance = to_balance.wrapping_add(value);
        true
    }

    /// Iterate over all accounts (overlay entries shadow frozen ones).
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.overlay.iter().chain(
            self.base
                .iter()
                .filter(|(a, _)| !self.overlay.contains_key(a) && !self.erased.contains(a)),
        )
    }

    /// Number of accounts in the world.
    pub fn len(&self) -> usize {
        self.overlay.len()
            + self
                .base
                .keys()
                .filter(|a| !self.overlay.contains_key(a) && !self.erased.contains(a))
                .count()
    }

    /// True if the world is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the whole world. Transaction execution clones the state and
    /// commits only on success, matching EVM revert semantics. Cost:
    /// O(accounts changed since the last [`WorldState::freeze`]) — the
    /// frozen base is shared, only the overlay is copied.
    pub fn snapshot(&self) -> WorldState {
        self.clone()
    }

    /// Compact every account into a new frozen base shared by all future
    /// snapshots, making [`WorldState::snapshot`] on the frozen state O(1).
    /// The harness calls this once on the post-constructor world so each
    /// sequence execution restarts from the constructor snapshot without
    /// copying (or re-executing) anything.
    pub fn freeze(&mut self) {
        let mut merged = (*self.base).clone();
        for address in std::mem::take(&mut self.erased) {
            merged.remove(&address);
        }
        for (address, account) in self.overlay.drain() {
            merged.insert(address, account);
        }
        self.base = Arc::new(merged);
    }
}

/// Logical equality: two worlds are equal when they map the same addresses
/// to equal accounts, regardless of how the accounts are split between the
/// frozen base and the overlay. Used by the decoder differential suite to
/// assert that the pre-decoded pipeline commits identical state.
impl PartialEq for WorldState {
    fn eq(&self, other: &WorldState) -> bool {
        let view = |w: &'_ WorldState| -> BTreeMap<Address, Account> {
            w.accounts().map(|(a, acct)| (*a, acct.clone())).collect()
        };
        view(self) == view(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn missing_accounts_read_as_zero() {
        let world = WorldState::new();
        assert_eq!(world.balance(addr(1)), U256::ZERO);
        assert_eq!(world.storage(addr(1), U256::ONE), U256::ZERO);
        assert!(world.code(addr(1)).is_empty());
    }

    #[test]
    fn storage_roundtrip_and_zero_deletion() {
        let mut world = WorldState::new();
        let a = addr(7);
        world.set_storage(a, U256::from_u64(3), U256::from_u64(99), Taint::empty());
        assert_eq!(world.storage(a, U256::from_u64(3)), U256::from_u64(99));
        world.set_storage(a, U256::from_u64(3), U256::ZERO, Taint::empty());
        assert_eq!(world.storage(a, U256::from_u64(3)), U256::ZERO);
        assert!(world.account(a).unwrap().storage.is_empty());
    }

    #[test]
    fn transfer_moves_balance() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(100)));
        assert!(world.transfer(addr(1), addr(2), U256::from_u64(40)));
        assert_eq!(world.balance(addr(1)), U256::from_u64(60));
        assert_eq!(world.balance(addr(2)), U256::from_u64(40));
    }

    #[test]
    fn transfer_fails_on_insufficient_balance() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(10)));
        assert!(!world.transfer(addr(1), addr(2), U256::from_u64(40)));
        assert_eq!(world.balance(addr(1)), U256::from_u64(10));
        assert_eq!(world.balance(addr(2)), U256::ZERO);
    }

    #[test]
    fn zero_value_transfer_always_succeeds() {
        let mut world = WorldState::new();
        assert!(world.transfer(addr(1), addr(2), U256::ZERO));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        let snap = world.snapshot();
        world.account_mut(addr(1)).balance = U256::from_u64(500);
        assert_eq!(snap.balance(addr(1)), U256::from_u64(5));
    }

    #[test]
    fn snapshot_of_frozen_world_is_independent() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        world.set_storage(addr(1), U256::ONE, U256::from_u64(7), Taint::empty());
        world.freeze();
        let snap = world.snapshot();
        // Writes after the freeze go to the overlay and leave the shared
        // base (and therefore the snapshot) untouched.
        world.account_mut(addr(1)).balance = U256::from_u64(500);
        world.set_storage(addr(1), U256::ONE, U256::from_u64(8), Taint::empty());
        assert_eq!(snap.balance(addr(1)), U256::from_u64(5));
        assert_eq!(snap.storage(addr(1), U256::ONE), U256::from_u64(7));
        assert_eq!(world.balance(addr(1)), U256::from_u64(500));
    }

    #[test]
    fn freeze_preserves_the_logical_world() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        world.put_account(addr(2), Account::contract(vec![0x00], U256::from_u64(9)));
        world.set_storage(addr(2), U256::ONE, U256::from_u64(42), Taint::BLOCK);
        let before = world.snapshot();
        world.freeze();
        assert_eq!(world, before);
        assert_eq!(world.len(), 2);
        // Frozen accounts stay readable and writable.
        assert_eq!(world.storage(addr(2), U256::ONE), U256::from_u64(42));
        assert!(world.transfer(addr(1), addr(2), U256::from_u64(5)));
        assert_eq!(world.balance(addr(2)), U256::from_u64(14));
    }

    #[test]
    fn remove_account_shadows_the_frozen_base() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        world.freeze();
        let removed = world.remove_account(addr(1));
        assert_eq!(removed.unwrap().balance, U256::from_u64(5));
        assert!(world.account(addr(1)).is_none());
        assert_eq!(world.len(), 0);
        assert!(world.is_empty());
        assert!(world.remove_account(addr(1)).is_none());
        // Re-creating the account starts from scratch, not the frozen copy.
        assert_eq!(world.account_mut(addr(1)).balance, U256::ZERO);
        assert_eq!(world.len(), 1);
    }

    #[test]
    fn accounts_iteration_merges_base_and_overlay() {
        let mut world = WorldState::new();
        world.put_account(addr(1), Account::eoa(U256::from_u64(1)));
        world.put_account(addr(2), Account::eoa(U256::from_u64(2)));
        world.freeze();
        world.put_account(addr(2), Account::eoa(U256::from_u64(20))); // shadowed
        world.put_account(addr(3), Account::eoa(U256::from_u64(3))); // overlay-only
        let merged: BTreeMap<Address, U256> = world
            .accounts()
            .map(|(a, acct)| (*a, acct.balance))
            .collect();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[&addr(1)], U256::from_u64(1));
        assert_eq!(merged[&addr(2)], U256::from_u64(20));
        assert_eq!(merged[&addr(3)], U256::from_u64(3));
        assert_eq!(world.len(), 3);
    }

    #[test]
    fn callable_accounts() {
        let contract = Account::contract(vec![0x00], U256::ZERO);
        assert!(contract.is_callable());
        assert!(!Account::eoa(U256::ZERO).is_callable());
        let attacker = Account {
            behaviour: HostBehaviour::ReentrantAttacker {
                callback_data: vec![],
                max_depth: 2,
            },
            ..Default::default()
        };
        assert!(attacker.is_callable());
    }

    #[test]
    fn storage_taint_tracking() {
        let mut world = WorldState::new();
        let a = addr(9);
        world.set_storage(a, U256::ONE, U256::from_u64(5), Taint::BLOCK);
        assert!(world.storage_taint(a, U256::ONE).contains(Taint::BLOCK));
        assert!(world.storage_taint(a, U256::from_u64(2)).is_empty());
    }

    #[test]
    fn world_equality_is_logical() {
        let mut frozen = WorldState::new();
        frozen.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        frozen.freeze();
        let mut flat = WorldState::new();
        flat.put_account(addr(1), Account::eoa(U256::from_u64(5)));
        assert_eq!(frozen, flat);
        flat.account_mut(addr(1)).balance = U256::from_u64(6);
        assert_ne!(frozen, flat);
    }
}
