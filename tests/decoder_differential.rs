//! Decoder differential suite: every execution pipeline must be observably
//! identical to the legacy byte-at-a-time decoder.
//!
//! For every corpus contract, 256 seeded calldata inputs (a mix of valid
//! selectors with random argument words and entirely random byte strings)
//! are executed **four ways** from identical post-constructor world
//! snapshots — through the direct-threaded block tier (per-unit handler
//! pointers — the production default), through the same block tier under
//! `match` dispatch, through the pre-decoded instruction stream with block
//! lowering disabled, and through the legacy decoder. The full
//! [`ExecutionResult`] (success, output, gas remaining, halt reason and the
//! complete instrumentation trace with its branch records) and the resulting
//! world state must match bit for bit across all four.

use mufuzz::{ContractHarness, FuzzerConfig};
use mufuzz_corpus::contracts;
use mufuzz_evm::{DecodedProgram, Evm, ExecutionResult, Message, ProgramCache, WorldState, U256};
use mufuzz_lang::compile_source;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::Arc;

const INPUTS_PER_CONTRACT: usize = 256;

/// The four execution tiers under comparison.
#[derive(Clone, Copy, Debug)]
enum Tier {
    /// Byte-at-a-time decoding in the hot loop (`legacy_decode = true`).
    Legacy,
    /// Pre-decoded instruction stream, instruction-at-a-time billing
    /// (`block_lowering = false`).
    Predecoded,
    /// Block-lowered program under the `match` dispatcher
    /// (`direct_threaded = false`).
    BlockMatch,
    /// Block-lowered program dispatched through per-unit handler pointers
    /// (the default).
    Block,
}

/// Derive one fuzzed calldata input: either a valid function selector with
/// random argument words, or raw random bytes.
fn random_calldata(harness: &ContractHarness, rng: &mut SmallRng) -> Vec<u8> {
    let functions = &harness.compiled.abi.functions;
    if !functions.is_empty() && rng.gen_bool(0.7) {
        let f = &functions[rng.gen_range(0..functions.len())];
        let mut data = f.selector.to_vec();
        let words = rng.gen_range(0..=f.inputs.len() + 1);
        for _ in 0..words {
            let mut word = [0u8; 32];
            match rng.gen_range(0..3u32) {
                // Small values exercise the happy paths.
                0 => word[31] = rng.gen_range(0..8u32) as u8,
                // Full-width randomness exercises bounds checks.
                1 => rng.fill_bytes(&mut word),
                // High-bit patterns exercise signed/overflow paths.
                _ => {
                    word[0] = 0xff;
                    word[31] = rng.gen_range(0..256u32) as u8;
                }
            }
            data.extend_from_slice(&word);
        }
        data
    } else {
        let len = rng.gen_range(0..68usize);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        data
    }
}

/// Execute one message from a fresh snapshot of the harness base world,
/// through the given tier. Returns the result and the post-execution world.
fn run_once(
    harness: &ContractHarness,
    cache: &ProgramCache,
    msg: &Message,
    tier: Tier,
) -> (ExecutionResult, WorldState) {
    let mut world = harness.base_world().snapshot();
    let mut block = harness.base_block();
    block.advance();
    let mut evm = Evm::new(&mut world, block).with_programs(cache);
    match tier {
        Tier::Legacy => evm.config.legacy_decode = true,
        Tier::Predecoded => evm.config.block_lowering = false,
        Tier::BlockMatch => evm.config.direct_threaded = false,
        Tier::Block => {
            debug_assert!(evm.config.block_lowering);
            debug_assert!(evm.config.direct_threaded);
        }
    }
    let result = evm.execute(msg);
    (result, world)
}

/// Run the full 4-tier × [`INPUTS_PER_CONTRACT`] bit-identity sweep over one
/// compiled (or ingested) contract.
fn sweep_four_tiers(name: &str, compiled: mufuzz_lang::CompiledContract) {
    let harness =
        ContractHarness::new(compiled, &FuzzerConfig::default()).expect("contract must deploy");

    // The production cache shape: the deployed runtime blob, pre-decoded
    // and block-lowered on insert.
    let runtime = harness.base_world().code(harness.contract_address);
    let mut cache = ProgramCache::new();
    cache.insert(
        Arc::clone(&runtime),
        Arc::new(DecodedProgram::decode(&runtime)),
    );

    // One deterministic stream per contract, derived from its name.
    let seed = name.bytes().fold(0xD1FFu64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(b as u64)
    });
    let mut rng = SmallRng::seed_from_u64(seed);

    for case in 0..INPUTS_PER_CONTRACT {
        let calldata = random_calldata(&harness, &mut rng);
        let sender = harness.senders[rng.gen_range(0..harness.senders.len())];
        let value = U256::from_u64(rng.gen_range(0..4u64) * 1_000_000_000);
        let msg = Message::new(sender, harness.contract_address, value, calldata);

        let (block, world_block) = run_once(&harness, &cache, &msg, Tier::Block);
        let (matched, world_matched) = run_once(&harness, &cache, &msg, Tier::BlockMatch);
        let (decoded, world_decoded) = run_once(&harness, &cache, &msg, Tier::Predecoded);
        let (legacy, world_legacy) = run_once(&harness, &cache, &msg, Tier::Legacy);

        // Gas first: with a fixed gas limit, equal `gas_used` is equal
        // gas remaining — the sharpest signal when block settlement or a
        // fused arm misbills, so it gets its own assertion.
        assert_eq!(
            block.gas_used, matched.gas_used,
            "{name}: dispatch gas divergence on input #{case}"
        );
        assert_eq!(
            block.gas_used, decoded.gas_used,
            "{name}: block-lowered gas divergence on input #{case}"
        );
        assert_eq!(
            decoded.gas_used, legacy.gas_used,
            "{name}: pre-decoded gas divergence on input #{case}"
        );
        assert_eq!(
            block,
            matched,
            "{name}: dispatch divergence on input #{case} ({} calldata bytes)",
            msg.data.len()
        );
        assert_eq!(
            block,
            decoded,
            "{name}: block-lowered divergence on input #{case} ({} calldata bytes)",
            msg.data.len()
        );
        assert_eq!(
            decoded,
            legacy,
            "{name}: decoder divergence on input #{case} ({} calldata bytes)",
            msg.data.len()
        );
        assert_eq!(
            block.trace.branches, legacy.trace.branches,
            "{name}: branch trace divergence on input #{case}"
        );
        assert_eq!(
            world_block, world_matched,
            "{name}: dispatch committed state divergence on input #{case}"
        );
        assert_eq!(
            world_block, world_decoded,
            "{name}: block-lowered committed state divergence on input #{case}"
        );
        assert_eq!(
            world_decoded, world_legacy,
            "{name}: committed state divergence on input #{case}"
        );
    }
}

#[test]
fn direct_threaded_pipeline_is_bit_identical_to_all_slower_tiers() {
    for bench in contracts::all_handwritten() {
        let compiled = compile_source(&bench.source).expect("corpus contract must compile");
        sweep_four_tiers(&bench.name, compiled);
    }
}

/// An ingested real-bytecode contract (ABI JSON + runtime hex, no
/// toy-language source) goes through the identical 4-tier × 256-input
/// sweep: the conformance surface added for arbitrary bytecode must stay
/// bit-identical across every dispatch tier too.
#[test]
fn ingested_real_bytecode_is_bit_identical_across_all_tiers() {
    let abi_json = std::fs::read_to_string("tests/fixtures/vault_token.abi.json").unwrap();
    let bytecode_hex = std::fs::read_to_string("tests/fixtures/vault_token.hex").unwrap();
    let ingested =
        mufuzz_corpus::ingest("VaultToken", &abi_json, &bytecode_hex).expect("fixture must ingest");
    assert!(ingested.skipped.is_empty());
    sweep_four_tiers("VaultToken", ingested.compiled);
}

/// Whole-sequence equivalence: the harness's production path (block-lowered,
/// cached, frame-reusing) produces the same traces as a legacy re-execution
/// of the same transactions.
#[test]
fn harness_sequences_replay_identically_through_the_legacy_decoder() {
    use mufuzz::{Sequence, TxInput};

    let compiled = compile_source(&contracts::crowdsale().source).unwrap();
    let harness = ContractHarness::new(compiled, &FuzzerConfig::default()).unwrap();
    let sequence = Sequence::new(vec![
        TxInput::new("invest", 0, U256::from_u64(7), &[U256::from_u64(7)]),
        TxInput::simple("refund"),
        TxInput::simple("withdraw"),
    ]);
    let outcome = harness.execute_sequence(&sequence);

    // Replay the same messages manually through the legacy decoder.
    let mut world = harness.base_world().snapshot();
    let mut block = harness.base_block();
    for (tx, trace) in sequence.txs.iter().zip(&outcome.traces) {
        block.advance();
        let abi = harness.compiled.abi.function(&tx.function).unwrap();
        let sender = harness.senders[tx.sender_index % harness.senders.len()];
        let mut evm = Evm::new(&mut world, block);
        evm.config.legacy_decode = true;
        let result = evm.execute(&Message::new(
            sender,
            harness.contract_address,
            tx.value(),
            tx.calldata(abi),
        ));
        assert_eq!(&result.trace, trace, "sequence trace divergence");
    }
    assert_eq!(&outcome.final_world, &world, "sequence state divergence");
}
